//! The discrete-event engine: daemons, the token ring, membership, and
//! client scheduling.
//!
//! ## Total order (Agreed service)
//!
//! Daemons form a logical ring ordered by site. A token circulates
//! permanently. On each visit a daemon:
//!
//! 1. sequences and broadcasts up to `flow_control_max_msgs` of its
//!    clients' pending Agreed messages,
//! 2. delivers to its local clients every message proven *stable* —
//!    sequence numbers at or below the all-received-up-to (aru) bound
//!    the token carries from the previous full rotation,
//! 3. folds its own contiguously-received high-water mark into the
//!    token's running minimum, and
//! 4. forwards the token.
//!
//! A message therefore becomes deliverable roughly one-and-a-half token
//! rotations after submission — about 1.3 ms on the paper's LAN and
//! about 310 ms on its WAN, matching §6.1.1/§6.2.1. A sender that just
//! misses the token waits a full rotation (footnote 10 of the paper).
//!
//! ## Membership
//!
//! A membership change (join/leave/partition/merge) runs for
//! `membership_rounds` full token rotations (gathering + agreement);
//! during the following rotation each daemon installs the new view as
//! the token passes it and notifies its local clients. Changes queue
//! FIFO if injected while another is in progress.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use gkap_sim::{CpuScheduler, Duration, EventQueue, SimTime};
use gkap_sim::{RandomSource, SplitMix64};
use gkap_telemetry::metrics::{Key, Layer};
use gkap_telemetry::{Actor, Event, EventKind, Telemetry};

use crate::client::{Client, ClientCtx, Outgoing};
use crate::config::GcsConfig;
use crate::message::{Delivery, Dest, Service, View, ViewId};
use crate::{ClientId, DaemonId, GroupId, MachineId};

/// Counters the engine accumulates across a run.
#[derive(Clone, Debug, Default)]
pub struct WorldStats {
    /// Agreed messages sequenced through the token ring.
    pub agreed_messages: u64,
    /// FIFO messages sent outside the ring.
    pub fifo_messages: u64,
    /// Completed token rotations.
    pub token_rotations: u64,
    /// Views installed (cluster-wide installs, not per daemon).
    pub views_installed: u64,
    /// Total payload bytes submitted.
    pub payload_bytes: u64,
    /// Daemon-to-daemon message copies lost in transit.
    pub messages_lost: u64,
    /// Retransmissions performed to recover losses.
    pub retransmissions: u64,
    /// Token visits on which a daemon issued at least one
    /// retransmission request (a gap wider than
    /// [`GcsConfig::recovery_batch`] needs several rounds).
    pub retransmission_rounds: u64,
    /// Daemons crashed via fault injection.
    pub daemon_crashes: u64,
    /// Ring reformations performed after crash detection.
    pub ring_reformations: u64,
}

/// One observability record (enabled via [`SimWorld::enable_trace`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A daemon sequenced an Agreed message.
    Sequenced {
        /// Global sequence number.
        seq: u64,
        /// Sending client.
        sender: ClientId,
        /// Instant of sequencing.
        at: SimTime,
    },
    /// A message was handed to a client.
    Delivered {
        /// Receiving client.
        client: ClientId,
        /// Sending client.
        sender: ClientId,
        /// Service class.
        service: Service,
        /// Instant of delivery.
        at: SimTime,
    },
    /// A daemon installed a view.
    ViewInstalled {
        /// Installing daemon.
        daemon: DaemonId,
        /// The view id.
        view_id: ViewId,
        /// Instant of installation.
        at: SimTime,
    },
    /// A lost message copy was re-sent to a daemon that missed it.
    Retransmit {
        /// The daemon receiving the retransmission.
        daemon: DaemonId,
        /// Sequence number recovered.
        seq: u64,
        /// Instant the retransmission was issued.
        at: SimTime,
    },
}

/// A sequenced Agreed message in flight between daemons.
#[derive(Debug)]
struct WireMsg {
    seq: u64,
    sender: ClientId,
    dest: Dest,
    view_id: ViewId,
    payload: Bytes,
    /// The daemon that sequenced the message (retransmission source).
    origin: DaemonId,
}

/// A causally-stamped multicast in flight.
#[derive(Clone, Debug)]
struct CausalMsg {
    sender: ClientId,
    view_id: ViewId,
    payload: Bytes,
    /// The sender's vector clock at send time (own entry already
    /// incremented).
    vc: Vec<u64>,
}

/// A client submission waiting at its daemon for the token.
#[derive(Debug)]
struct Submission {
    sender: ClientId,
    dest: Dest,
    view_id: ViewId,
    payload: Bytes,
}

#[derive(Debug)]
enum Ev {
    /// The token of generation `gen` arrives at `daemon`. Stale
    /// generations (superseded by a ring reformation) are ignored.
    Token { daemon: DaemonId, gen: u64 },
    /// A sequenced Agreed message reaches a daemon.
    DaemonRecv { daemon: DaemonId, msg: Rc<WireMsg> },
    /// A client's send reaches its local daemon.
    ClientSubmit { client: ClientId, out: Outgoing },
    /// A FIFO message reaches the destination daemon, ready for local
    /// delivery.
    FifoArrive {
        daemon: DaemonId,
        delivery: Delivery,
    },
    /// A message is handed to a client.
    ClientDeliver {
        client: ClientId,
        delivery: Delivery,
    },
    /// A view change is handed to a client.
    ViewDeliver { client: ClientId, view: Rc<View> },
    /// A retransmission request for `seq` reaches `from` (an alive
    /// daemon holding the message), which re-sends it to `to`.
    Retransmit {
        seq: u64,
        to: DaemonId,
        from: DaemonId,
    },
    /// A causal multicast arrives at a client's daemon for causal
    /// delivery filtering.
    CausalArrive { client: ClientId, msg: CausalMsg },
    /// The surviving daemons detect that `daemon` crashed: the ring
    /// reforms, the token regenerates, the dead machine's members are
    /// evicted via a view change.
    CrashDetect { daemon: DaemonId },
    /// A scheduled fault from a [`FaultPlan`] fires.
    Fault { fault: crate::fault::Fault },
}

struct DaemonState {
    machine: MachineId,
    /// False once the daemon has crashed: it stops sequencing,
    /// delivering and forwarding the token, and the ring reforms
    /// without it after the detection timeout.
    alive: bool,
    pending: VecDeque<Submission>,
    received: BTreeMap<u64, Rc<WireMsg>>,
    /// Highest seq such that this daemon holds all messages `1..=seq`.
    contiguous: u64,
    /// `contiguous` as of this daemon's most recent token visit (the
    /// value it last reported into the token's aru computation).
    reported: u64,
    /// Highest seq delivered to local clients.
    delivered: u64,
    /// Last view id this daemon has installed.
    installed_view: ViewId,
}

struct ClientSlot {
    machine: MachineId,
    handler: Option<Box<dyn Client>>,
    busy_until: SimTime,
    alive: bool,
    /// Vector clock over causal messages (index = sending client).
    vclock: Vec<u64>,
    /// How many causal messages this client has sent (its own clock
    /// entry advances on *delivery*, including the loop-back copy).
    causal_sent: u64,
    /// Causal messages awaiting their happens-before predecessors.
    causal_buffer: Vec<CausalMsg>,
}

struct PendingChange {
    joined: Vec<ClientId>,
    left: Vec<ClientId>,
}

struct ActiveMembership {
    new_view: Rc<View>,
    /// Ring-head passes remaining before daemons may install.
    rounds_left: u32,
    /// Set once `rounds_left` hits zero: daemons install on token visit.
    installing: bool,
    installed: Vec<bool>,
}

/// The simulated world: topology, daemons, clients, token and clock.
pub struct SimWorld {
    cfg: GcsConfig,
    queue: EventQueue<Ev>,
    daemons: Vec<DaemonState>,
    machines: Vec<CpuScheduler>,
    clients: Vec<ClientSlot>,
    ring: Vec<DaemonId>,
    next_seq: u64,
    /// aru carried by the token: the minimum, over all daemons, of the
    /// contiguous high-water mark each reported at its latest token
    /// visit. Messages at or below it are held by every daemon.
    token_aru: u64,
    /// Current installed view of every group carried by this ring.
    views: BTreeMap<GroupId, Rc<View>>,
    view_history: BTreeMap<ViewId, Rc<View>>,
    next_view_id: ViewId,
    /// Queued membership changes, per group (FIFO within a group;
    /// different groups run their membership protocols concurrently).
    pending_changes: BTreeMap<GroupId, VecDeque<PendingChange>>,
    /// In-progress membership protocol per group.
    active: BTreeMap<GroupId, ActiveMembership>,
    /// Non-token events in flight (quiescence detection).
    outstanding: u64,
    stats: WorldStats,
    token_started: bool,
    /// Every sequenced message (the origin daemons' retransmission
    /// buffers, kept globally for simulation convenience).
    sent_msgs: BTreeMap<u64, Rc<WireMsg>>,
    /// Deterministic loss process.
    loss_rng: SplitMix64,
    /// Token generation: bumped on every ring reformation so tokens
    /// already in flight at crash detection are invalidated (exactly
    /// one token survives a reformation).
    token_gen: u64,
    /// Temporary loss-rate override from a fault plan: `(rate, until)`.
    loss_burst: Option<(f64, SimTime)>,
    /// Virtual instant of the previous completed token rotation, for
    /// the rotation-interval histogram.
    last_rotation_at: Option<SimTime>,
    /// When `true` (the default), [`SimWorld::run_until`] skips whole
    /// idle token rotations analytically instead of dispatching each
    /// hop as an event. Observable state is identical either way; see
    /// [`SimWorld::set_idle_fast_forward`].
    idle_fast_forward: bool,
    /// Telemetry sink (disabled by default; recording never advances
    /// virtual time, so enabling it cannot change simulation results).
    telemetry: Telemetry,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("now", &self.now())
            .field("clients", &self.clients.len())
            .field("daemons", &self.daemons.len())
            .field("groups", &self.views.len())
            .field("view", &self.views.get(&0).map(|v| v.id))
            .finish()
    }
}

impl SimWorld {
    /// Creates a world over the given configuration with no clients.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GcsConfig::validate`]).
    pub fn new(cfg: GcsConfig) -> Self {
        cfg.validate();
        let machine_count = cfg.topology.machine_count();
        let daemons = (0..machine_count)
            .map(|m| DaemonState {
                machine: m,
                alive: true,
                pending: VecDeque::new(),
                received: BTreeMap::new(),
                contiguous: 0,
                reported: 0,
                delivered: 0,
                installed_view: 0,
            })
            .collect();
        let machines = (0..machine_count)
            .map(|m| CpuScheduler::new(cfg.topology.machine(m).cores))
            .collect();
        SimWorld {
            ring: (0..machine_count).collect(),
            queue: EventQueue::new(),
            daemons,
            machines,
            clients: Vec::new(),
            next_seq: 1,
            token_aru: 0,
            views: BTreeMap::new(),
            view_history: BTreeMap::new(),
            next_view_id: 1,
            pending_changes: BTreeMap::new(),
            active: BTreeMap::new(),
            outstanding: 0,
            stats: WorldStats::default(),
            token_started: false,
            sent_msgs: BTreeMap::new(),
            loss_rng: SplitMix64::new(cfg.loss_seed),
            token_gen: 0,
            last_rotation_at: None,
            idle_fast_forward: true,
            loss_burst: None,
            telemetry: Telemetry::disabled(),
            cfg,
        }
    }

    /// Turns on event tracing (an enabled [`Telemetry`] sink); records
    /// are retrievable via [`SimWorld::trace`] or, in full structured
    /// form, via [`SimWorld::telemetry`].
    pub fn enable_trace(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
    }

    /// Attaches an externally-owned telemetry sink (shared with other
    /// layers, e.g. the protocol drivers) so all events land in one
    /// stream.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry sink (disabled unless [`SimWorld::enable_trace`]
    /// or [`SimWorld::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The recorded GCS-level trace, reconstructed from the telemetry
    /// stream (empty when tracing is disabled). Protocol- and
    /// crypto-level events are available via [`SimWorld::telemetry`].
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.telemetry
            .events()
            .into_iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Sequenced { seq, sender } => Some(TraceEvent::Sequenced {
                    seq,
                    sender,
                    at: ev.at,
                }),
                EventKind::Delivered { sender, service } => Some(TraceEvent::Delivered {
                    client: match ev.actor {
                        Actor::Client(c) => c,
                        _ => return None,
                    },
                    sender,
                    service: Service::from_str_label(service)?,
                    at: ev.at,
                }),
                EventKind::ViewInstalled { view_id } => Some(TraceEvent::ViewInstalled {
                    daemon: match ev.actor {
                        Actor::Daemon(d) => d,
                        _ => return None,
                    },
                    view_id,
                    at: ev.at,
                }),
                EventKind::Retransmit { seq } => Some(TraceEvent::Retransmit {
                    daemon: match ev.actor {
                        Actor::Daemon(d) => d,
                        _ => return None,
                    },
                    seq,
                    at: ev.at,
                }),
                _ => None,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Setup and injection API
    // ------------------------------------------------------------------

    /// Adds a client process, assigning it to a machine round-robin
    /// (the paper distributes members uniformly over the 13 machines).
    /// The client is not yet a member of any view.
    pub fn add_client(&mut self, handler: Box<dyn Client>) -> ClientId {
        let machine = self.clients.len() % self.cfg.topology.machine_count();
        self.add_client_on(handler, machine)
    }

    /// Adds a client on a specific machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn add_client_on(&mut self, handler: Box<dyn Client>, machine: MachineId) -> ClientId {
        assert!(
            machine < self.cfg.topology.machine_count(),
            "unknown machine"
        );
        let id = self.clients.len();
        self.clients.push(ClientSlot {
            machine,
            handler: Some(handler),
            busy_until: SimTime::ZERO,
            alive: true,
            vclock: Vec::new(),
            causal_sent: 0,
            causal_buffer: Vec::new(),
        });
        id
    }

    /// Installs the initial view containing every added client, at the
    /// current instant and free of membership cost (the group's
    /// bootstrap, which no experiment measures), and starts the token.
    pub fn install_initial_view(&mut self) {
        let members: Vec<ClientId> = (0..self.clients.len()).collect();
        self.install_initial_view_of(members);
    }

    /// Installs an initial view over a subset of clients (group `0`).
    ///
    /// # Panics
    ///
    /// Panics if a view is already installed or `members` is empty.
    pub fn install_initial_view_of(&mut self, members: Vec<ClientId>) {
        self.install_initial_view_in(0, members);
    }

    /// Installs the initial view of one group over a subset of
    /// clients. Many groups can share the ring; each carries its own
    /// view state while token, links and CPU contention are shared.
    ///
    /// # Panics
    ///
    /// Panics if the group already has a view or `members` is empty.
    pub fn install_initial_view_in(&mut self, group: GroupId, members: Vec<ClientId>) {
        assert!(
            !self.views.contains_key(&group),
            "initial view already installed for group {group}"
        );
        assert!(!members.is_empty(), "initial view cannot be empty");
        let view = Rc::new(View {
            id: self.next_view_id,
            group,
            joined: members.clone(),
            members,
            left: Vec::new(),
        });
        self.next_view_id += 1;
        self.adopt_view(&view);
        for &c in &view.members {
            self.schedule(
                self.cfg.client_daemon_delay,
                Ev::ViewDeliver {
                    client: c,
                    view: Rc::clone(&view),
                },
            );
        }
        self.start_token_if_needed();
    }

    /// Injects a membership change into group `0`: `joined` clients
    /// enter the view, `left` members leave it. The new view installs
    /// after the membership protocol completes (several token
    /// rotations).
    ///
    /// # Panics
    ///
    /// Panics if no initial view exists, a joining client is unknown or
    /// already a member, or a leaving client is not a member.
    pub fn inject_change(&mut self, joined: Vec<ClientId>, left: Vec<ClientId>) {
        self.inject_change_in(0, joined, left);
    }

    /// Injects a membership change into a specific group. Changes for
    /// different groups proceed concurrently; changes within one group
    /// queue FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the group has no initial view, a joining client is
    /// unknown or already a member, or a leaving client is not a
    /// member of that group.
    pub fn inject_change_in(&mut self, group: GroupId, joined: Vec<ClientId>, left: Vec<ClientId>) {
        // Validate against the group membership as it will stand once
        // every queued change has installed.
        assert!(
            self.active.contains_key(&group) || self.views.contains_key(&group),
            "no initial view installed for group {group}"
        );
        let members = self.projected_members_of(group);
        for &j in &joined {
            assert!(j < self.clients.len(), "unknown client {j}");
            assert!(!members.contains(&j), "client {j} already a member");
        }
        for &l in &left {
            assert!(members.contains(&l), "client {l} is not a member");
        }
        self.pending_changes
            .entry(group)
            .or_default()
            .push_back(PendingChange { joined, left });
        self.maybe_start_membership(group);
    }

    /// Convenience: one client joins.
    pub fn inject_join(&mut self, client: ClientId) {
        self.inject_change(vec![client], vec![]);
    }

    /// Convenience: one member leaves.
    pub fn inject_leave(&mut self, client: ClientId) {
        self.inject_change(vec![], vec![client]);
    }

    /// Convenience: a partition removes several members at once.
    pub fn inject_partition(&mut self, leaving: Vec<ClientId>) {
        self.inject_change(vec![], leaving);
    }

    /// Convenience: a merge adds several members at once.
    pub fn inject_merge(&mut self, joining: Vec<ClientId>) {
        self.inject_change(joining, vec![]);
    }

    /// The group-`0` membership as it will stand once the active and
    /// every queued change has installed (empty before any initial
    /// view). Fault injectors consult this to aim joins/leaves at
    /// clients whose membership status is already settled in-flight.
    pub fn projected_members(&self) -> Vec<ClientId> {
        self.projected_members_of(0)
    }

    /// Per-group variant of [`SimWorld::projected_members`].
    pub fn projected_members_of(&self, group: GroupId) -> Vec<ClientId> {
        let mut members: Vec<ClientId> = match self.active.get(&group) {
            Some(active) => active.new_view.members.clone(),
            None => self
                .views
                .get(&group)
                .map(|v| v.members.clone())
                .unwrap_or_default(),
        };
        if let Some(queue) = self.pending_changes.get(&group) {
            for ch in queue {
                members.retain(|m| !ch.left.contains(m));
                members.extend_from_slice(&ch.joined);
            }
        }
        members
    }

    /// Every group id known to the world (installed, installing, or
    /// with queued changes), in ascending order.
    fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self.views.keys().copied().collect();
        for g in self.active.keys().chain(self.pending_changes.keys()) {
            if !ids.contains(g) {
                ids.push(*g);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Crashes a daemon mid-token-rotation: it stops sequencing and
    /// delivering instantly (pending submissions die with it, and a
    /// token in flight towards it is lost), and its local clients die
    /// with the machine. After
    /// [`GcsConfig::crash_detection_timeout`] the surviving daemons
    /// reform the ring, regenerate the token, and evict the dead
    /// machine's members via a membership change — in-flight messages
    /// that only the dead daemon held are recovered from the
    /// retransmission buffers during subsequent token rotations.
    ///
    /// # Panics
    ///
    /// Panics if `daemon` is out of range or has already crashed.
    pub fn inject_crash(&mut self, daemon: DaemonId) {
        assert!(daemon < self.daemons.len(), "unknown daemon {daemon}");
        assert!(
            self.daemons[daemon].alive,
            "daemon {daemon} already crashed"
        );
        self.daemons[daemon].alive = false;
        self.daemons[daemon].pending.clear();
        self.stats.daemon_crashes += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::Fault {
                action: "crash",
                target: daemon,
            },
        });
        // The machine died: its client processes die with it.
        let machine = self.daemons[daemon].machine;
        for c in 0..self.clients.len() {
            if self.clients[c].machine == machine {
                self.clients[c].alive = false;
            }
        }
        self.schedule(self.cfg.crash_detection_timeout, Ev::CrashDetect { daemon });
    }

    /// Overrides the copy-loss probability with `rate` for `duration`
    /// of virtual time (the configured `loss_rate` resumes afterwards).
    /// Gaps opened by the burst are recovered by token-driven
    /// retransmission once it ends.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_loss_burst(&mut self, rate: f64, duration: Duration) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "burst loss rate must be in [0, 1]"
        );
        let until = self.queue.now() + duration;
        self.loss_burst = Some((rate, until));
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::World,
            kind: EventKind::Fault {
                action: "loss_burst",
                target: (rate * 100.0) as usize,
            },
        });
    }

    /// Schedules every fault in `plan` as a simulation event at its
    /// virtual-time offset from now. Deterministic: the same plan
    /// applied to the same world yields the same run.
    pub fn apply_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        for planned in plan.faults {
            self.schedule(
                planned.after,
                Ev::Fault {
                    fault: planned.fault,
                },
            );
        }
    }

    /// Whether a daemon is still alive (has not crashed).
    pub fn daemon_alive(&self, daemon: DaemonId) -> bool {
        daemon < self.daemons.len() && self.daemons[daemon].alive
    }

    /// Whether a client process is still alive (its machine has not
    /// crashed).
    pub fn client_alive(&self, client: ClientId) -> bool {
        client < self.clients.len() && self.clients[client].alive
    }

    /// Number of daemons that have not crashed.
    pub fn alive_daemon_count(&self) -> usize {
        self.daemons.iter().filter(|d| d.alive).count()
    }

    /// Current size of the token ring (shrinks on reformation).
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The currently installed view of group `0`, if any.
    pub fn view(&self) -> Option<&View> {
        self.views.get(&0).map(Rc::as_ref)
    }

    /// The currently installed view of a specific group, if any.
    pub fn view_of(&self, group: GroupId) -> Option<&View> {
        self.views.get(&group).map(Rc::as_ref)
    }

    /// Every view a group has installed or begun installing, in id
    /// (installation) order — index 0 is the initial view, index `k`
    /// the view produced by the group's `k`-th membership change.
    pub fn views_of(&self, group: GroupId) -> Vec<Rc<View>> {
        self.view_history
            .values()
            .filter(|v| v.group == group)
            .cloned()
            .collect()
    }

    /// Number of groups with an installed view.
    pub fn group_count(&self) -> usize {
        self.views.len()
    }

    /// Whether a membership change is in progress or queued (any
    /// group).
    pub fn membership_busy(&self) -> bool {
        !self.active.is_empty() || self.pending_changes.values().any(|q| !q.is_empty())
    }

    /// Engine counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// The machine a client runs on.
    pub fn client_machine(&self, c: ClientId) -> MachineId {
        self.clients[c].machine
    }

    /// The configuration in use.
    pub fn config(&self) -> &GcsConfig {
        &self.cfg
    }

    /// Borrows a client handler, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client<T: Client>(&self, id: ClientId) -> &T {
        let handler = self.clients[id]
            .handler
            .as_ref()
            .expect("client handler taken (re-entrant access?)");
        (handler.as_ref() as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("client type mismatch")
    }

    /// Mutably borrows a client handler, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client_mut<T: Client>(&mut self, id: ClientId) -> &mut T {
        let handler = self.clients[id]
            .handler
            .as_mut()
            .expect("client handler taken (re-entrant access?)");
        (handler.as_mut() as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("client type mismatch")
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Processes one event. Returns `false` when the world is
    /// quiescent (only the idle token remains).
    pub fn step(&mut self) -> bool {
        if self.quiescent() {
            return false;
        }
        let Some((_, ev)) = self.queue.pop() else {
            return false;
        };
        if !matches!(ev, Ev::Token { .. }) {
            self.outstanding -= 1;
        }
        self.dispatch(ev);
        true
    }

    /// Runs until no work remains (the token keeps circulating but
    /// nothing else is pending).
    pub fn run_until_quiescent(&mut self) {
        while self.step() {}
    }

    /// Advances virtual time to `t`, processing every event scheduled
    /// at or before it — including idle token circulation, which
    /// [`SimWorld::step`] skips once the world is quiescent. Used by
    /// workload drivers to reach a scheduled injection instant. A `t`
    /// in the past is a no-op.
    pub fn run_until(&mut self, t: SimTime) {
        self.try_fast_forward_idle(t);
        while self.queue.peek_time().is_some_and(|pt| pt <= t) {
            let Some((_, ev)) = self.queue.pop() else {
                break;
            };
            if !matches!(ev, Ev::Token { .. }) {
                self.outstanding -= 1;
            }
            self.dispatch(ev);
        }
    }

    /// Enables or disables the idle-token fast-forward (on by
    /// default). When the world is quiescent, an idle token visit only
    /// performs ring-head bookkeeping and forwards itself, so
    /// [`SimWorld::run_until`] can skip whole rotations analytically —
    /// the final partial rotation is always stepped, which makes the
    /// clock, stats, and every future event instant identical to the
    /// fully stepped execution. Disable to force stepping (e.g. when
    /// comparing the two paths).
    pub fn set_idle_fast_forward(&mut self, on: bool) {
        self.idle_fast_forward = on;
    }

    /// Skips whole idle token rotations up to (but never beyond) `t`.
    ///
    /// Applies only in the strictly idle regime: the world is
    /// quiescent, telemetry is off (an enabled sink counts per-event
    /// dispatches, which skipping would under-report), and the queue
    /// holds exactly the one live token. A full rotation then costs
    /// `sum(hop + token_processing)` around the ring and its only
    /// effects are `token_rotations` and `last_rotation_at`, which are
    /// replayed analytically; the token event is moved forward by a
    /// whole number of periods so the stepped tail reproduces the
    /// exact event instants of a fully stepped run.
    fn try_fast_forward_idle(&mut self, t: SimTime) {
        if !self.idle_fast_forward || self.telemetry.is_enabled() {
            return;
        }
        if self.queue.len() != 1 || !self.quiescent() {
            return;
        }
        if self.queue.peek_time().is_none_or(|pt| pt > t) {
            return;
        }
        let Some((a0, ev)) = self.queue.pop() else {
            return;
        };
        let Ev::Token { daemon, gen } = ev else {
            self.queue.schedule_at(a0, ev);
            return;
        };
        let put_back = Ev::Token { daemon, gen };
        if gen != self.token_gen || !self.daemons[daemon].alive {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        let Some(pos0) = self.ring.iter().position(|&d| d == daemon) else {
            self.queue.schedule_at(a0, put_back);
            return;
        };
        // One idle rotation starting from `pos0`: per hop the token is
        // held for `token_processing` (nothing is sequenced) and then
        // travels the inter-machine latency. `offset` is the delay
        // from `a0` until the ring head's arrival (zero when the token
        // is already at the head: that arrival is `a0` itself).
        let n = self.ring.len();
        let mut period = Duration::ZERO;
        let mut offset = Duration::ZERO;
        for i in 0..n {
            let p = self.ring[(pos0 + i) % n];
            let q = self.ring[(pos0 + i + 1) % n];
            let hop = self
                .cfg
                .topology
                .machine_latency(self.daemons[p].machine, self.daemons[q].machine);
            period = period + hop + self.cfg.token_processing;
            if (pos0 + i + 1) % n == 0 && pos0 != 0 {
                offset = period;
            }
        }
        if period.as_nanos() == 0 {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        let k = t.since(a0).as_nanos() / period.as_nanos();
        if k == 0 {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        // Head arrivals in `[a0, a0 + k*period)`: exactly `k` of them,
        // at `a0 + offset + j*period` for `j` in `0..k`.
        self.stats.token_rotations += k;
        self.last_rotation_at =
            Some(a0 + offset + Duration::from_nanos((k - 1) * period.as_nanos()));
        self.queue
            .schedule_at(a0 + Duration::from_nanos(k * period.as_nanos()), put_back);
    }

    /// Runs while `pred` returns `true` and work remains. Returns
    /// `true` if the run stopped because the predicate turned false
    /// (as opposed to quiescence).
    pub fn run_while(&mut self, mut pred: impl FnMut(&SimWorld) -> bool) -> bool {
        loop {
            if !pred(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// `true` when nothing but the idle token remains. Crashed daemons
    /// are excluded: they will never deliver again, and the reformed
    /// ring no longer waits on them.
    pub fn quiescent(&self) -> bool {
        self.outstanding == 0
            && self.active.is_empty()
            && self.pending_changes.values().all(VecDeque::is_empty)
            && self
                .daemons
                .iter()
                .filter(|d| d.alive)
                .all(|d| d.pending.is_empty() && d.delivered == self.next_seq - 1)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, delay: Duration, ev: Ev) {
        if !matches!(ev, Ev::Token { .. }) {
            self.outstanding += 1;
        }
        self.queue.schedule(delay, ev);
    }

    fn start_token_if_needed(&mut self) {
        if !self.token_started {
            self.token_started = true;
            let gen = self.token_gen;
            self.queue.schedule(
                Duration::ZERO,
                Ev::Token {
                    daemon: self.ring[0],
                    gen,
                },
            );
        }
    }

    fn adopt_view(&mut self, view: &Rc<View>) {
        self.views.insert(view.group, Rc::clone(view));
        self.view_history.insert(view.id, Rc::clone(view));
        self.stats.views_installed += 1;
    }

    fn maybe_start_membership(&mut self, group: GroupId) {
        if self.active.contains_key(&group) {
            return;
        }
        let Some(view) = self.views.get(&group).cloned() else {
            return;
        };
        let Some(change) = self
            .pending_changes
            .get_mut(&group)
            .and_then(VecDeque::pop_front)
        else {
            return;
        };
        let mut members: Vec<ClientId> = view
            .members
            .iter()
            .copied()
            .filter(|m| !change.left.contains(m))
            .collect();
        members.extend_from_slice(&change.joined);
        let new_view = Rc::new(View {
            id: self.next_view_id,
            group,
            members,
            joined: change.joined,
            left: change.left,
        });
        self.next_view_id += 1;
        self.view_history.insert(new_view.id, Rc::clone(&new_view));
        self.active.insert(
            group,
            ActiveMembership {
                new_view,
                rounds_left: self.cfg.membership_rounds,
                installing: false,
                installed: vec![false; self.daemons.len()],
            },
        );
    }

    /// Stable metric name of an event variant (the sim event loop's
    /// per-kind dispatch counters).
    fn ev_metric_name(ev: &Ev) -> &'static str {
        match ev {
            Ev::Token { .. } => "ev_token",
            Ev::DaemonRecv { .. } => "ev_daemon_recv",
            Ev::ClientSubmit { .. } => "ev_client_submit",
            Ev::FifoArrive { .. } => "ev_fifo_arrive",
            Ev::ClientDeliver { .. } => "ev_client_deliver",
            Ev::ViewDeliver { .. } => "ev_view_deliver",
            Ev::Retransmit { .. } => "ev_retransmit",
            Ev::CausalArrive { .. } => "ev_causal_arrive",
            Ev::CrashDetect { .. } => "ev_crash_detect",
            Ev::Fault { .. } => "ev_fault",
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        // Sim-layer event-loop metrics: total dispatches, per-kind
        // dispatches, and the peak of in-flight (non-token) events.
        self.telemetry
            .metric_inc(Key::new(Layer::Sim, "events_dispatched"), 1);
        self.telemetry
            .metric_inc(Key::new(Layer::Sim, Self::ev_metric_name(&ev)), 1);
        let outstanding = self.outstanding;
        self.telemetry
            .gauge_max(Key::new(Layer::Sim, "outstanding_peak"), || {
                outstanding as f64
            });
        match ev {
            Ev::Token { daemon, gen } => self.on_token(daemon, gen),
            Ev::DaemonRecv { daemon, msg } => self.on_daemon_recv(daemon, msg),
            Ev::ClientSubmit { client, out } => self.on_client_submit(client, out),
            Ev::FifoArrive { daemon, delivery } => self.on_fifo_arrive(daemon, delivery),
            Ev::ClientDeliver { client, delivery } => self.deliver_to_client(client, delivery),
            Ev::ViewDeliver { client, view } => self.deliver_view_to_client(client, &view),
            Ev::Retransmit { seq, to, from } => self.on_retransmit(seq, to, from),
            Ev::CausalArrive { client, msg } => self.on_causal_arrive(client, msg),
            Ev::CrashDetect { daemon } => self.on_crash_detect(daemon),
            Ev::Fault { fault } => self.on_fault(fault),
        }
    }

    /// Ring reformation, `crash_detection_timeout` after a crash: the
    /// dead daemon leaves the ring, the token regenerates at the ring
    /// head (invalidating any token still in flight), and the dead
    /// machine's members are evicted via a membership change.
    fn on_crash_detect(&mut self, daemon: DaemonId) {
        self.ring.retain(|&d| d != daemon);
        self.stats.ring_reformations += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::Fault {
                action: "crash_detected",
                target: daemon,
            },
        });
        self.token_gen += 1;
        if let Some(&head) = self.ring.first() {
            let gen = self.token_gen;
            self.queue
                .schedule(Duration::ZERO, Ev::Token { daemon: head, gen });
        }
        // The dead daemon can never install a pending view; any
        // membership waiting only on it completes now.
        for group in self.group_ids() {
            self.check_membership_complete(group);
        }
        // Its members leave via a view change, per group (if any view
        // exists yet).
        let machine = self.daemons[daemon].machine;
        for group in self.group_ids() {
            let lost: Vec<ClientId> = self
                .projected_members_of(group)
                .into_iter()
                .filter(|&c| self.clients[c].machine == machine)
                .collect();
            if !lost.is_empty() {
                self.inject_change_in(group, vec![], lost);
            }
        }
    }

    /// Executes one scheduled fault from a [`crate::FaultPlan`]. Faults
    /// that no longer apply (daemon already dead, members already
    /// gone/present) degrade to no-ops so randomized plans stay valid.
    fn on_fault(&mut self, fault: crate::fault::Fault) {
        use crate::fault::Fault;
        match fault {
            Fault::Crash { daemon } => {
                if daemon < self.daemons.len() && self.daemons[daemon].alive {
                    self.inject_crash(daemon);
                }
            }
            Fault::LossBurst { rate, duration } => self.set_loss_burst(rate, duration),
            Fault::Partition { members } => {
                let current = self.projected_members();
                let leaving: Vec<ClientId> = members
                    .into_iter()
                    .filter(|m| current.contains(m))
                    .collect();
                if !leaving.is_empty() {
                    let at = self.queue.now();
                    let count = leaving.len();
                    self.telemetry.record(|| Event {
                        at,
                        dur: Duration::ZERO,
                        actor: Actor::World,
                        kind: EventKind::Fault {
                            action: "partition",
                            target: count,
                        },
                    });
                    self.inject_partition(leaving);
                }
            }
            Fault::Heal { members } => {
                let current = self.projected_members();
                let joining: Vec<ClientId> = members
                    .into_iter()
                    .filter(|&m| {
                        m < self.clients.len()
                            && !current.contains(&m)
                            && self.daemons[self.clients[m].machine].alive
                    })
                    .collect();
                if !joining.is_empty() {
                    let at = self.queue.now();
                    let count = joining.len();
                    self.telemetry.record(|| Event {
                        at,
                        dur: Duration::ZERO,
                        actor: Actor::World,
                        kind: EventKind::Fault {
                            action: "heal",
                            target: count,
                        },
                    });
                    self.inject_merge(joining);
                }
            }
        }
    }

    fn on_token(&mut self, daemon_id: DaemonId, gen: u64) {
        // A stale token (superseded by a ring reformation) or a token
        // reaching a crashed daemon vanishes; crash detection
        // regenerates exactly one replacement.
        if gen != self.token_gen || !self.daemons[daemon_id].alive {
            return;
        }

        // Rotation boundary bookkeeping at the ring head.
        if self.ring.first() == Some(&daemon_id) {
            self.stats.token_rotations += 1;
            let rotation = self.stats.token_rotations;
            let at = self.queue.now();
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor: Actor::Daemon(daemon_id),
                kind: EventKind::TokenRotation { rotation },
            });
            if let Some(prev) = self.last_rotation_at {
                self.telemetry
                    .metric_observe(Key::new(Layer::Gcs, "token_rotation_ms"), || {
                        at.since(prev).as_millis_f64()
                    });
            }
            self.last_rotation_at = Some(at);
            // View-synchrony flush: the new view may only install once
            // every message sent in the old view has been delivered
            // everywhere (Spread flushes before installing a view).
            // Without this, a message of epoch E could arrive after a
            // member entered epoch E+1 and be discarded — breaking
            // cascaded membership changes.
            let flushed = self.outstanding == 0
                && self
                    .daemons
                    .iter()
                    .filter(|d| d.alive)
                    .all(|d| d.pending.is_empty() && d.delivered == self.next_seq - 1);
            // Every group's membership protocol advances on the same
            // ring-head pass: the rounds are shared token rotations,
            // and the flush condition is global because the sequencer
            // (and therefore stability) is shared across groups.
            for active in self.active.values_mut() {
                if !active.installing {
                    if active.rounds_left > 0 {
                        active.rounds_left -= 1;
                    }
                    if active.rounds_left == 0 && flushed {
                        active.installing = true;
                    }
                }
            }
        }

        // 1. Sequence and broadcast pending submissions (flow control).
        let mut sent = 0usize;
        while sent < self.cfg.flow_control_max_msgs {
            let Some(sub) = self.daemons[daemon_id].pending.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let msg = Rc::new(WireMsg {
                seq,
                sender: sub.sender,
                dest: sub.dest,
                view_id: sub.view_id,
                payload: sub.payload,
                origin: daemon_id,
            });
            self.stats.agreed_messages += 1;
            let at = self.queue.now();
            let sender = msg.sender;
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor: Actor::Daemon(daemon_id),
                kind: EventKind::Sequenced { seq, sender },
            });
            self.sent_msgs.insert(seq, Rc::clone(&msg));
            // The sender's daemon holds its own message instantly.
            self.store_at_daemon(daemon_id, Rc::clone(&msg));
            let size_cost = self.payload_cost(&msg.payload);
            for peer in 0..self.daemons.len() {
                if peer == daemon_id || !self.daemons[peer].alive {
                    continue;
                }
                if self.lose_copy() {
                    self.stats.messages_lost += 1;
                    continue;
                }
                let latency = self
                    .cfg
                    .topology
                    .machine_latency(self.daemons[daemon_id].machine, self.daemons[peer].machine);
                let delay = latency + size_cost + self.cfg.per_message_processing;
                self.schedule(
                    delay,
                    Ev::DaemonRecv {
                        daemon: peer,
                        msg: Rc::clone(&msg),
                    },
                );
            }
            sent += 1;
        }
        // Flow-control metrics: how much this token visit sequenced,
        // and how much the budget deferred to the next rotation (the
        // paper's footnote-10 wait is exactly this backlog).
        if sent > 0 {
            self.telemetry
                .metric_inc(Key::new(Layer::Gcs, "flow_sequenced"), sent as u64);
            self.telemetry
                .metric_observe(Key::new(Layer::Gcs, "flow_sent_per_visit"), || sent as f64);
        }
        let backlog = self.daemons[daemon_id].pending.len();
        if backlog > 0 {
            self.telemetry
                .metric_inc(Key::new(Layer::Gcs, "flow_deferred"), backlog as u64);
            self.telemetry
                .gauge_max(Key::new(Layer::Gcs, "flow_backlog_peak"), || backlog as f64);
        }

        // 1b. Request retransmission of any gap this daemon observes
        //     (the token reveals that higher sequence numbers exist —
        //     Totem-style negative acknowledgement). Armed whenever the
        //     world can actually lose copies (configured loss, a loss
        //     burst, or a crash) so clean runs never issue spurious
        //     requests for messages that are merely in flight.
        let lossy =
            self.cfg.loss_rate > 0.0 || self.loss_burst.is_some() || self.stats.daemon_crashes > 0;
        if lossy && self.daemons[daemon_id].contiguous < self.next_seq - 1 {
            self.request_missing(daemon_id);
        }

        // 2. Report our contiguous mark and recompute the aru (the
        //    minimum over every alive daemon's latest report).
        self.daemons[daemon_id].reported = self.daemons[daemon_id].contiguous;
        self.recompute_aru();

        // 3. Deliver stable messages to local clients.
        self.deliver_stable(daemon_id);

        // 4. Install pending views whose membership protocols are done
        //    (ascending group order — BTreeMap iteration — so the
        //    install sequence is deterministic).
        let mut installs: Vec<Rc<View>> = Vec::new();
        for active in self.active.values_mut() {
            if active.installing && !active.installed[daemon_id] {
                active.installed[daemon_id] = true;
                installs.push(Rc::clone(&active.new_view));
            }
        }
        for view in installs {
            self.install_view_at_daemon(daemon_id, &view);
        }

        // 5. Forward the token to the ring successor. (A daemon that
        //    crashed between dispatch and here has already returned
        //    above; one removed from the ring at detection no longer
        //    receives tokens of the current generation.)
        let Some(pos) = self.ring.iter().position(|&d| d == daemon_id) else {
            return;
        };
        let next = self.ring[(pos + 1) % self.ring.len()];
        let hop = self
            .cfg
            .topology
            .machine_latency(self.daemons[daemon_id].machine, self.daemons[next].machine);
        let hold = self.cfg.token_processing + self.cfg.per_message_processing * sent as u64;
        self.queue
            .schedule(hop + hold, Ev::Token { daemon: next, gen });
    }

    /// Recomputes the token's aru over the alive daemons. When every
    /// daemon has crashed there is no ring left to agree on stability:
    /// the aru is left untouched — a graceful no-op instead of a panic
    /// on the empty minimum.
    fn recompute_aru(&mut self) {
        if let Some(min) = self
            .daemons
            .iter()
            .filter(|d| d.alive)
            .map(|d| d.reported)
            .min()
        {
            self.token_aru = min;
        }
    }

    /// The loss probability in force right now (a burst overrides the
    /// configured rate while it lasts).
    fn effective_loss_rate(&self) -> f64 {
        match self.loss_burst {
            Some((rate, until)) if self.queue.now() < until => self.cfg.loss_rate.max(rate),
            _ => self.cfg.loss_rate,
        }
    }

    /// Deterministic Bernoulli draw for one message copy.
    fn lose_copy(&mut self) -> bool {
        let rate = self.effective_loss_rate();
        if rate <= 0.0 {
            return false;
        }
        let x = (self.loss_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < rate
    }

    /// An alive daemon able to re-send `seq` to `requester`: the origin
    /// if it survives, otherwise any other surviving ring member (the
    /// retransmission buffers are global — every daemon that received
    /// the message can source it).
    fn retransmit_source(&self, origin: DaemonId, requester: DaemonId) -> Option<DaemonId> {
        if self.daemons[origin].alive {
            return Some(origin);
        }
        self.ring
            .iter()
            .copied()
            .find(|&d| d != requester && self.daemons[d].alive)
    }

    /// Ask retransmission sources to re-send up to
    /// [`GcsConfig::recovery_batch`] messages this daemon is missing
    /// below the global high-water mark. Wider gaps recover over
    /// several token visits; each visit that issues at least one
    /// request counts as one retransmission round.
    fn request_missing(&mut self, daemon: DaemonId) {
        let have_upto = self.daemons[daemon].contiguous;
        let missing: Vec<u64> = ((have_upto + 1)..self.next_seq)
            .filter(|seq| !self.daemons[daemon].received.contains_key(seq))
            .take(self.cfg.recovery_batch)
            .collect();
        let mut requested = 0u64;
        for seq in missing {
            let Some(msg) = self.sent_msgs.get(&seq) else {
                continue;
            };
            if msg.origin == daemon {
                continue;
            }
            let Some(source) = self.retransmit_source(msg.origin, daemon) else {
                // Sole survivor: nobody is left to recover from, so
                // synthesize the copy from the global buffer (in a
                // real deployment the reformation would drop the
                // message from the order; the simulation keeps the
                // order intact for determinism).
                let Some(msg) = self.sent_msgs.get(&seq).map(Rc::clone) else {
                    continue;
                };
                self.store_at_daemon(daemon, msg);
                requested += 1;
                continue;
            };
            // Request travels to the source; it re-sends from there.
            let latency = self
                .cfg
                .topology
                .machine_latency(self.daemons[daemon].machine, self.daemons[source].machine);
            self.schedule(
                latency + self.cfg.per_message_processing,
                Ev::Retransmit {
                    seq,
                    to: daemon,
                    from: source,
                },
            );
            requested += 1;
        }
        if requested > 0 {
            self.stats.retransmission_rounds += 1;
        }
    }

    fn on_retransmit(&mut self, seq: u64, to: DaemonId, from: DaemonId) {
        if self.daemons[to].received.contains_key(&seq) {
            return; // already recovered meanwhile
        }
        if !self.daemons[to].alive {
            return; // requester crashed while the request was in flight
        }
        if !self.daemons[from].alive {
            return; // source crashed; the next token visit re-requests
        }
        let Some(msg) = self.sent_msgs.get(&seq).cloned() else {
            return;
        };
        self.stats.retransmissions += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(to),
            kind: EventKind::Retransmit { seq },
        });
        // The re-sent copy can be lost as well; the next token visit
        // re-requests it.
        if self.lose_copy() {
            self.stats.messages_lost += 1;
            return;
        }
        let latency = self
            .cfg
            .topology
            .machine_latency(self.daemons[from].machine, self.daemons[to].machine);
        let size_cost = self.payload_cost(&msg.payload);
        self.schedule(
            latency + size_cost + self.cfg.per_message_processing,
            Ev::DaemonRecv { daemon: to, msg },
        );
    }

    fn payload_cost(&self, payload: &Bytes) -> Duration {
        // Cost proportional to size, in whole-KB granularity rounded up.
        let kb = (payload.len() as u64).div_ceil(1024);
        self.cfg.per_kb * kb
    }

    fn store_at_daemon(&mut self, daemon: DaemonId, msg: Rc<WireMsg>) {
        let d = &mut self.daemons[daemon];
        d.received.insert(msg.seq, msg);
        while d.received.contains_key(&(d.contiguous + 1)) {
            d.contiguous += 1;
        }
    }

    fn on_daemon_recv(&mut self, daemon: DaemonId, msg: Rc<WireMsg>) {
        if !self.daemons[daemon].alive {
            return; // the copy arrived at a crashed daemon
        }
        self.store_at_daemon(daemon, msg);
    }

    /// Delivers every received message with `seq <= token_aru` to this
    /// daemon's local clients.
    fn deliver_stable(&mut self, daemon: DaemonId) {
        let upto = self.token_aru.min(self.daemons[daemon].contiguous);
        while self.daemons[daemon].delivered < upto {
            let seq = self.daemons[daemon].delivered + 1;
            let Some(msg) = self.daemons[daemon].received.remove(&seq) else {
                break;
            };
            self.daemons[daemon].delivered = seq;
            self.deliver_wire_msg(daemon, &msg);
        }
    }

    fn deliver_wire_msg(&mut self, daemon: DaemonId, msg: &WireMsg) {
        let Some(view) = self.view_history.get(&msg.view_id) else {
            return;
        };
        let members = view.members.clone();
        let machine = self.daemons[daemon].machine;
        let targets: Vec<ClientId> = members
            .into_iter()
            .filter(|&c| self.clients[c].machine == machine && self.clients[c].alive)
            .filter(|&c| match msg.dest {
                Dest::All => true,
                Dest::One(t) => t == c,
            })
            .collect();
        for c in targets {
            let delivery = Delivery {
                sender: msg.sender,
                service: Service::Agreed,
                dest: msg.dest,
                view_id: msg.view_id,
                payload: msg.payload.clone(),
            };
            self.schedule(
                self.cfg.client_daemon_delay,
                Ev::ClientDeliver {
                    client: c,
                    delivery,
                },
            );
        }
    }

    fn on_client_submit(&mut self, client: ClientId, out: Outgoing) {
        let machine = self.clients[client].machine;
        if !self.clients[client].alive || !self.daemons[machine].alive {
            return; // the client or its daemon died while this was in flight
        }
        // View-synchrony: the message belongs to the view its sender
        // had installed at send time (not the engine's global view,
        // which flips only once every daemon has installed).
        let view_id = out.view_id;
        self.stats.payload_bytes += out.payload.len() as u64;
        match out.service {
            Service::Agreed => {
                self.daemons[machine].pending.push_back(Submission {
                    sender: client,
                    dest: out.dest,
                    view_id,
                    payload: out.payload,
                });
            }
            Service::Causal => {
                self.stats.fifo_messages += 1;
                // Stamp with the sender's vector clock; the own entry
                // carries the per-sender send sequence (the clock
                // itself advances when the loop-back copy delivers).
                self.grow_vclock(client);
                let seq = self.clients[client].causal_sent + 1;
                self.clients[client].causal_sent = seq;
                let mut vc = self.clients[client].vclock.clone();
                vc[client] = seq;
                let msg = CausalMsg {
                    sender: client,
                    view_id,
                    payload: out.payload,
                    vc,
                };
                let size_cost = self.payload_cost(&msg.payload);
                let members = self
                    .view_history
                    .get(&view_id)
                    .map(|v| v.members.clone())
                    .unwrap_or_default();
                for target in members {
                    if target == client {
                        // Local delivery is immediate (own messages are
                        // already in causal order).
                        self.on_causal_arrive(client, msg.clone());
                        continue;
                    }
                    let latency = self
                        .cfg
                        .topology
                        .machine_latency(machine, self.clients[target].machine)
                        + size_cost
                        + self.cfg.per_message_processing
                        + self.cfg.client_daemon_delay;
                    self.schedule(
                        latency,
                        Ev::CausalArrive {
                            client: target,
                            msg: msg.clone(),
                        },
                    );
                }
            }
            Service::Fifo => {
                self.stats.fifo_messages += 1;
                let size_cost = self.payload_cost(&out.payload);
                let delivery = Delivery {
                    sender: client,
                    service: Service::Fifo,
                    dest: out.dest,
                    view_id,
                    payload: out.payload,
                };
                match out.dest {
                    Dest::One(target) => {
                        let td = self.clients[target].machine;
                        let latency = self.cfg.topology.machine_latency(machine, td)
                            + size_cost
                            + self.cfg.per_message_processing;
                        self.schedule(
                            latency,
                            Ev::FifoArrive {
                                daemon: td,
                                delivery,
                            },
                        );
                    }
                    Dest::All => {
                        for td in 0..self.daemons.len() {
                            let latency = self.cfg.topology.machine_latency(machine, td)
                                + size_cost
                                + self.cfg.per_message_processing;
                            self.schedule(
                                latency,
                                Ev::FifoArrive {
                                    daemon: td,
                                    delivery: delivery.clone(),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_fifo_arrive(&mut self, daemon: DaemonId, delivery: Delivery) {
        let machine = self.daemons[daemon].machine;
        let targets: Vec<ClientId> = match delivery.dest {
            Dest::One(t) => vec![t],
            Dest::All => self
                .view_history
                .get(&delivery.view_id)
                .map(|v| v.members.clone())
                .unwrap_or_default(),
        };
        for c in targets {
            if c < self.clients.len() && self.clients[c].machine == machine && self.clients[c].alive
            {
                self.schedule(
                    self.cfg.client_daemon_delay,
                    Ev::ClientDeliver {
                        client: c,
                        delivery: delivery.clone(),
                    },
                );
            }
        }
    }

    fn install_view_at_daemon(&mut self, daemon: DaemonId, view: &Rc<View>) {
        self.daemons[daemon].installed_view = view.id;
        let at = self.queue.now();
        let view_id = view.id;
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::ViewInstalled { view_id },
        });
        // Per-member installation processing at the daemon.
        let install_cost = self.cfg.membership_per_member * view.members.len() as u64;
        let machine = self.daemons[daemon].machine;
        // Members on this machine receive the view.
        let locals: Vec<ClientId> = view
            .members
            .iter()
            .copied()
            .filter(|&c| self.clients[c].machine == machine)
            .collect();
        for c in locals {
            self.clients[c].alive = true;
            self.schedule(
                install_cost + self.cfg.client_daemon_delay,
                Ev::ViewDeliver {
                    client: c,
                    view: Rc::clone(view),
                },
            );
        }
        // Members that left and live on this machine go silent.
        for &l in &view.left {
            if self.clients[l].machine == machine {
                self.clients[l].alive = false;
            }
        }
        self.check_membership_complete(view.group);
    }

    /// Cluster-wide membership completion for one group: the new view
    /// is adopted once every *alive* daemon has installed it (a
    /// crashed daemon never will, and the reformed ring does not wait
    /// on it).
    fn check_membership_complete(&mut self, group: GroupId) {
        let done = self
            .active
            .get(&group)
            .map(|a| {
                a.installed
                    .iter()
                    .zip(&self.daemons)
                    .all(|(&installed, d)| installed || !d.alive)
            })
            .unwrap_or(false);
        if done {
            let Some(active) = self.active.remove(&group) else {
                return;
            };
            self.adopt_view(&active.new_view);
            self.maybe_start_membership(group);
        }
    }

    fn grow_vclock(&mut self, client: ClientId) {
        let n = self.clients.len();
        if self.clients[client].vclock.len() < n {
            self.clients[client].vclock.resize(n, 0);
        }
    }

    /// True if `msg` is the next causal message from its sender and
    /// every message it causally depends on has been delivered here.
    fn causally_deliverable(&self, client: ClientId, msg: &CausalMsg) -> bool {
        let vc = &self.clients[client].vclock;
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        for k in 0..msg.vc.len() {
            if k == msg.sender {
                continue;
            }
            if get(vc, k) < msg.vc[k] {
                return false; // a causal predecessor is still missing
            }
        }
        // Exactly the next message from this sender.
        get(vc, msg.sender) + 1 == msg.vc[msg.sender]
    }

    fn on_causal_arrive(&mut self, client: ClientId, msg: CausalMsg) {
        if !self.clients[client].alive {
            return;
        }
        self.grow_vclock(client);
        self.clients[client].causal_buffer.push(msg);
        // Deliver everything that has become deliverable, repeatedly
        // (one delivery can unblock others).
        loop {
            let idx = {
                let slot = &self.clients[client];
                slot.causal_buffer
                    .iter()
                    .position(|m| self.causally_deliverable(client, m))
            };
            let Some(i) = idx else { break };
            let msg = self.clients[client].causal_buffer.remove(i);
            // Merge the clock.
            self.grow_vclock(client);
            let slot = &mut self.clients[client];
            if slot.vclock.len() < msg.vc.len() {
                slot.vclock.resize(msg.vc.len(), 0);
            }
            for k in 0..msg.vc.len() {
                slot.vclock[k] = slot.vclock[k].max(msg.vc[k]);
            }
            let delivery = Delivery {
                sender: msg.sender,
                service: Service::Causal,
                dest: Dest::All,
                view_id: msg.view_id,
                payload: msg.payload,
            };
            self.deliver_to_client(client, delivery);
        }
    }

    fn deliver_view_to_client(&mut self, client: ClientId, view: &Rc<View>) {
        if !self.clients[client].alive {
            return;
        }
        let Some(mut handler) = self.clients[client].handler.take() else {
            return;
        };
        let start = self.queue.now().max(self.clients[client].busy_until);
        let speed = self
            .cfg
            .topology
            .machine(self.clients[client].machine)
            .speed;
        let mut ctx = ClientCtx::new(client, start, view.id, speed);
        handler.on_view(&mut ctx, view);
        self.finish_handler(client, handler, start, ctx);
    }

    fn deliver_to_client(&mut self, client: ClientId, delivery: Delivery) {
        if !self.clients[client].alive {
            return;
        }
        let at = self.queue.now();
        let sender = delivery.sender;
        let service = delivery.service.as_str();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Client(client),
            kind: EventKind::Delivered { sender, service },
        });
        let Some(mut handler) = self.clients[client].handler.take() else {
            return;
        };
        let start = self.queue.now().max(self.clients[client].busy_until);
        let speed = self
            .cfg
            .topology
            .machine(self.clients[client].machine)
            .speed;
        let mut ctx = ClientCtx::new(client, start, delivery.view_id, speed);
        handler.on_message(&mut ctx, &delivery);
        self.finish_handler(client, handler, start, ctx);
    }

    /// Applies a handler's CPU charge, reports the true completion
    /// instant back to the client, and schedules its sends.
    fn finish_handler(
        &mut self,
        client: ClientId,
        mut handler: Box<dyn Client>,
        start: SimTime,
        ctx: ClientCtx<'_>,
    ) {
        let machine = self.clients[client].machine;
        let run = self.machines[machine].run_detailed(start, ctx.charged);
        let end = run.end;
        if ctx.charged > Duration::ZERO {
            self.telemetry.record(|| Event {
                at: run.begin,
                dur: run.end.since(run.begin),
                actor: Actor::Client(client),
                kind: EventKind::HandlerSpan {
                    wait: run.begin.since(start),
                },
            });
        }
        self.clients[client].busy_until = end;
        handler.on_cpu_complete(end);
        self.clients[client].handler = Some(handler);
        let submit_delay = end.since(self.queue.now()) + self.cfg.client_daemon_delay;
        for out in ctx.outgoing {
            self.schedule(submit_delay, Ev::ClientSubmit { client, out });
        }
    }
}

//! The discrete-event engine: daemons, the token ring, membership, and
//! client scheduling.
//!
//! ## Total order (Agreed service)
//!
//! Daemons form a logical ring ordered by site. A token circulates
//! permanently. On each visit a daemon:
//!
//! 1. sequences and broadcasts up to `flow_control_max_msgs` of its
//!    clients' pending Agreed messages,
//! 2. delivers to its local clients every message proven *stable* —
//!    sequence numbers at or below the all-received-up-to (aru) bound
//!    the token carries from the previous full rotation,
//! 3. folds its own contiguously-received high-water mark into the
//!    token's running minimum, and
//! 4. forwards the token.
//!
//! A message therefore becomes deliverable roughly one-and-a-half token
//! rotations after submission — about 1.3 ms on the paper's LAN and
//! about 310 ms on its WAN, matching §6.1.1/§6.2.1. A sender that just
//! misses the token waits a full rotation (footnote 10 of the paper).
//!
//! ## Membership
//!
//! A membership change (join/leave/partition/merge) runs for
//! `membership_rounds` full token rotations (gathering + agreement);
//! during the following rotation each daemon installs the new view as
//! the token passes it and notifies its local clients. Changes queue
//! FIFO if injected while another is in progress.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use gkap_sim::{CpuScheduler, Duration, EventQueue, SimTime};
use gkap_sim::{RandomSource, SplitMix64};
use gkap_telemetry::metrics::{Key, Layer};
use gkap_telemetry::{Actor, Event, EventKind, Telemetry};

use crate::client::{Client, ClientCtx, Outgoing};
use crate::config::GcsConfig;
use crate::message::{Delivery, Dest, Service, View, ViewId};
use crate::{ClientId, DaemonId, GroupId, MachineId};

/// Counters the engine accumulates across a run.
#[derive(Clone, Debug, Default)]
pub struct WorldStats {
    /// Agreed messages sequenced through the token ring.
    pub agreed_messages: u64,
    /// FIFO messages sent outside the ring.
    pub fifo_messages: u64,
    /// Completed token rotations.
    pub token_rotations: u64,
    /// Views installed (cluster-wide installs, not per daemon).
    pub views_installed: u64,
    /// Total payload bytes submitted.
    pub payload_bytes: u64,
    /// Daemon-to-daemon message copies lost in transit.
    pub messages_lost: u64,
    /// Retransmissions performed to recover losses.
    pub retransmissions: u64,
    /// Token visits on which a daemon issued at least one
    /// retransmission request (a gap wider than
    /// [`GcsConfig::recovery_batch`] needs several rounds).
    pub retransmission_rounds: u64,
    /// Daemons crashed via fault injection.
    pub daemon_crashes: u64,
    /// Ring reformations performed after crash detection.
    pub ring_reformations: u64,
    /// Parity shard copies dispatched by FEC-coded fan-out generations
    /// (`per-shard × per-peer`, counted whether or not the copy
    /// survives the loss process).
    pub parity_shards_sent: u64,
    /// Data messages reconstructed locally from parity shards by the
    /// FEC layer, without a retransmission round trip.
    pub fec_repairs: u64,
    /// Virtual nanoseconds of completed loss-recovery windows closed
    /// by FEC repair: for every lost copy later reconstructed from
    /// parity, the span from the loss instant to the reconstruction.
    pub fec_repair_recovery_ns: u64,
    /// Virtual nanoseconds of completed loss-recovery windows closed
    /// by retransmission: for every lost copy later recovered by a
    /// re-sent copy, the span from the loss instant to the arrival.
    pub retransmission_recovery_ns: u64,
}

impl WorldStats {
    /// Total completed loss-recovery time in virtual nanoseconds. By
    /// construction exactly the sum of the FEC-repair and
    /// retransmission attributions: every lost copy's recovery window
    /// is closed by exactly one of the two mechanisms.
    pub fn recovery_ns(&self) -> u64 {
        self.fec_repair_recovery_ns + self.retransmission_recovery_ns
    }
}

/// One observability record (enabled via [`SimWorld::enable_trace`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A daemon sequenced an Agreed message.
    Sequenced {
        /// Global sequence number.
        seq: u64,
        /// Sending client.
        sender: ClientId,
        /// Instant of sequencing.
        at: SimTime,
    },
    /// A message was handed to a client.
    Delivered {
        /// Receiving client.
        client: ClientId,
        /// Sending client.
        sender: ClientId,
        /// Service class.
        service: Service,
        /// Instant of delivery.
        at: SimTime,
    },
    /// A daemon installed a view.
    ViewInstalled {
        /// Installing daemon.
        daemon: DaemonId,
        /// The view id.
        view_id: ViewId,
        /// Instant of installation.
        at: SimTime,
    },
    /// A lost message copy was re-sent to a daemon that missed it.
    Retransmit {
        /// The daemon receiving the retransmission.
        daemon: DaemonId,
        /// Sequence number recovered.
        seq: u64,
        /// Instant the retransmission was issued.
        at: SimTime,
    },
    /// A daemon reconstructed a missing message from FEC parity.
    FecRepaired {
        /// The repairing daemon.
        daemon: DaemonId,
        /// Sequence number reconstructed.
        seq: u64,
        /// Instant of the reconstruction.
        at: SimTime,
    },
}

/// A sequenced Agreed message in flight between daemons.
#[derive(Debug)]
struct WireMsg {
    seq: u64,
    sender: ClientId,
    dest: Dest,
    view_id: ViewId,
    payload: Bytes,
    /// The daemon that sequenced the message (retransmission source).
    origin: DaemonId,
}

/// A causally-stamped multicast in flight.
#[derive(Clone, Debug)]
struct CausalMsg {
    sender: ClientId,
    view_id: ViewId,
    payload: Bytes,
    /// The sender's vector clock at send time (own entry already
    /// incremented).
    vc: Vec<u64>,
}

/// A client submission waiting at its daemon for the token.
#[derive(Debug)]
struct Submission {
    sender: ClientId,
    dest: Dest,
    view_id: ViewId,
    payload: Bytes,
}

/// One parity shard of a FEC-coded fan-out generation in flight
/// between daemons (the messages a daemon sequences within one token
/// visit form one erasure-coding generation; see [`crate::fec`]).
#[derive(Debug)]
struct ParityShard {
    /// First sequence number of the generation.
    first_seq: u64,
    /// Number of data messages in the generation.
    k: usize,
    /// Global shard index within the generation (`k..k + r` for the
    /// parity rows, as [`crate::fec::encode`] numbers them).
    index: usize,
    /// Coded bytes (the generation's maximum record length).
    body: Vec<u8>,
}

/// Parity shards a daemon has buffered for one generation it has not
/// yet fully received.
struct FecGenBuf {
    k: usize,
    shards: BTreeMap<usize, Rc<ParityShard>>,
}

/// Per-daemon adaptive retransmission state (exponential backoff with
/// jitter; only consulted when [`GcsConfig::retrans_backoff`] is
/// nonzero).
struct RetransState {
    /// Earliest instant the next request round may fire.
    next_at: SimTime,
    /// Backoff exponent: consecutive request rounds without progress.
    level: u32,
    /// Consecutive no-progress rounds towards the give-up escalation.
    strikes: u32,
    /// `contiguous` as of the last request round (`None` when no round
    /// is outstanding); progress past it resets the backoff.
    awaiting_since: Option<u64>,
}

impl RetransState {
    fn new() -> Self {
        RetransState {
            next_at: SimTime::ZERO,
            level: 0,
            strikes: 0,
            awaiting_since: None,
        }
    }
}

/// Which mechanism closed a loss-recovery window (drives the split
/// attribution in [`WorldStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoveryPath {
    FecRepair,
    Retransmission,
}

#[derive(Debug)]
enum Ev {
    /// The token of generation `gen` arrives at `daemon`. Stale
    /// generations (superseded by a ring reformation) are ignored.
    Token { daemon: DaemonId, gen: u64 },
    /// A sequenced Agreed message reaches a daemon.
    DaemonRecv { daemon: DaemonId, msg: Rc<WireMsg> },
    /// A client's send reaches its local daemon.
    ClientSubmit { client: ClientId, out: Outgoing },
    /// A FIFO message reaches the destination daemon, ready for local
    /// delivery.
    FifoArrive {
        daemon: DaemonId,
        delivery: Delivery,
    },
    /// A message is handed to a client.
    ClientDeliver {
        client: ClientId,
        delivery: Delivery,
    },
    /// A view change is handed to a client.
    ViewDeliver { client: ClientId, view: Rc<View> },
    /// A retransmission request for `seq` reaches `from` (an alive
    /// daemon holding the message), which re-sends it to `to`.
    Retransmit {
        seq: u64,
        to: DaemonId,
        from: DaemonId,
    },
    /// A parity shard of a FEC-coded fan-out generation reaches a
    /// daemon.
    ParityRecv {
        daemon: DaemonId,
        shard: Rc<ParityShard>,
    },
    /// A causal multicast arrives at a client's daemon for causal
    /// delivery filtering.
    CausalArrive { client: ClientId, msg: CausalMsg },
    /// The surviving daemons detect that `daemon` crashed: the ring
    /// reforms, the token regenerates, the dead machine's members are
    /// evicted via a view change.
    CrashDetect { daemon: DaemonId },
    /// A scheduled fault from a [`FaultPlan`] fires.
    Fault { fault: crate::fault::Fault },
}

struct DaemonState {
    machine: MachineId,
    /// False once the daemon has crashed: it stops sequencing,
    /// delivering and forwarding the token, and the ring reforms
    /// without it after the detection timeout.
    alive: bool,
    pending: VecDeque<Submission>,
    received: BTreeMap<u64, Rc<WireMsg>>,
    /// Highest seq such that this daemon holds all messages `1..=seq`.
    contiguous: u64,
    /// `contiguous` as of this daemon's most recent token visit (the
    /// value it last reported into the token's aru computation).
    reported: u64,
    /// Highest seq delivered to local clients.
    delivered: u64,
    /// Last view id this daemon has installed.
    installed_view: ViewId,
    /// Buffered parity shards per incomplete fan-out generation, keyed
    /// by the generation's first sequence number. Empty whenever FEC
    /// is disabled.
    fec_buf: BTreeMap<u64, FecGenBuf>,
    /// Adaptive retransmission backoff state.
    retrans: RetransState,
}

struct ClientSlot {
    machine: MachineId,
    handler: Option<Box<dyn Client>>,
    busy_until: SimTime,
    alive: bool,
    /// Vector clock over causal messages (index = sending client).
    vclock: Vec<u64>,
    /// How many causal messages this client has sent (its own clock
    /// entry advances on *delivery*, including the loop-back copy).
    causal_sent: u64,
    /// Causal messages awaiting their happens-before predecessors.
    causal_buffer: Vec<CausalMsg>,
}

struct PendingChange {
    joined: Vec<ClientId>,
    left: Vec<ClientId>,
}

struct ActiveMembership {
    new_view: Rc<View>,
    /// Ring-head passes remaining before daemons may install.
    rounds_left: u32,
    /// Set once `rounds_left` hits zero: daemons install on token visit.
    installing: bool,
    installed: Vec<bool>,
}

/// The simulated world: topology, daemons, clients, token and clock.
pub struct SimWorld {
    cfg: GcsConfig,
    queue: EventQueue<Ev>,
    daemons: Vec<DaemonState>,
    machines: Vec<CpuScheduler>,
    clients: Vec<ClientSlot>,
    ring: Vec<DaemonId>,
    next_seq: u64,
    /// aru carried by the token: the minimum, over all daemons, of the
    /// contiguous high-water mark each reported at its latest token
    /// visit. Messages at or below it are held by every daemon.
    token_aru: u64,
    /// Current installed view of every group carried by this ring.
    views: BTreeMap<GroupId, Rc<View>>,
    view_history: BTreeMap<ViewId, Rc<View>>,
    next_view_id: ViewId,
    /// Queued membership changes, per group (FIFO within a group;
    /// different groups run their membership protocols concurrently).
    pending_changes: BTreeMap<GroupId, VecDeque<PendingChange>>,
    /// In-progress membership protocol per group.
    active: BTreeMap<GroupId, ActiveMembership>,
    /// Non-token events in flight (quiescence detection).
    outstanding: u64,
    stats: WorldStats,
    token_started: bool,
    /// Every sequenced message (the origin daemons' retransmission
    /// buffers, kept globally for simulation convenience).
    sent_msgs: BTreeMap<u64, Rc<WireMsg>>,
    /// Deterministic loss process.
    loss_rng: SplitMix64,
    /// Separate deterministic stream for retransmission-backoff jitter
    /// (its own stream so enabling backoff never perturbs the loss
    /// draws).
    retrans_rng: SplitMix64,
    /// Sticky flag: set the first time any data copy is lost, and the
    /// arming condition for gap-retransmission requests. A token-visit
    /// gap with no loss ever observed is merely in-flight traffic and
    /// must not trigger spurious requests; a gap after a loss burst
    /// has *ended* must still be recovered.
    losses_observed: bool,
    /// EWMA loss estimate over the gaps daemons observe at token
    /// visits (updated only when [`GcsConfig::fec_adaptive`] is set);
    /// drives the adaptive parity budget.
    loss_ewma: f64,
    /// Loss instants of copies not yet recovered, keyed by
    /// `(destination daemon, seq)`. First loss wins (a re-lost
    /// retransmission keeps the original instant); the entry is
    /// removed — and the elapsed window attributed to FEC repair or
    /// retransmission — when the daemon finally obtains the message.
    lost_at: BTreeMap<(DaemonId, u64), SimTime>,
    /// Token generation: bumped on every ring reformation so tokens
    /// already in flight at crash detection are invalidated (exactly
    /// one token survives a reformation).
    token_gen: u64,
    /// Temporary loss-rate override from a fault plan: `(rate, until)`.
    loss_burst: Option<(f64, SimTime)>,
    /// Virtual instant of the previous completed token rotation, for
    /// the rotation-interval histogram.
    last_rotation_at: Option<SimTime>,
    /// When `true` (the default), [`SimWorld::run_until`] skips whole
    /// idle token rotations analytically instead of dispatching each
    /// hop as an event. Observable state is identical either way; see
    /// [`SimWorld::set_idle_fast_forward`].
    idle_fast_forward: bool,
    /// Telemetry sink (disabled by default; recording never advances
    /// virtual time, so enabling it cannot change simulation results).
    telemetry: Telemetry,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("now", &self.now())
            .field("clients", &self.clients.len())
            .field("daemons", &self.daemons.len())
            .field("groups", &self.views.len())
            .field("view", &self.views.get(&0).map(|v| v.id))
            .finish()
    }
}

impl SimWorld {
    /// Creates a world over the given configuration with no clients.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GcsConfig::validate`]).
    pub fn new(cfg: GcsConfig) -> Self {
        cfg.validate();
        let machine_count = cfg.topology.machine_count();
        let daemons = (0..machine_count)
            .map(|m| DaemonState {
                machine: m,
                alive: true,
                pending: VecDeque::new(),
                received: BTreeMap::new(),
                contiguous: 0,
                reported: 0,
                delivered: 0,
                installed_view: 0,
                fec_buf: BTreeMap::new(),
                retrans: RetransState::new(),
            })
            .collect();
        let machines = (0..machine_count)
            .map(|m| CpuScheduler::new(cfg.topology.machine(m).cores))
            .collect();
        SimWorld {
            ring: (0..machine_count).collect(),
            queue: EventQueue::new(),
            daemons,
            machines,
            clients: Vec::new(),
            next_seq: 1,
            token_aru: 0,
            views: BTreeMap::new(),
            view_history: BTreeMap::new(),
            next_view_id: 1,
            pending_changes: BTreeMap::new(),
            active: BTreeMap::new(),
            outstanding: 0,
            stats: WorldStats::default(),
            token_started: false,
            sent_msgs: BTreeMap::new(),
            loss_rng: SplitMix64::new(cfg.loss_seed),
            // Golden-ratio tweak: a fixed, documented offset giving the
            // jitter stream its own deterministic seed.
            retrans_rng: SplitMix64::new(cfg.loss_seed ^ 0x9E37_79B9_7F4A_7C15),
            losses_observed: false,
            loss_ewma: 0.0,
            lost_at: BTreeMap::new(),
            token_gen: 0,
            last_rotation_at: None,
            idle_fast_forward: true,
            loss_burst: None,
            telemetry: Telemetry::disabled(),
            cfg,
        }
    }

    /// Turns on event tracing (an enabled [`Telemetry`] sink); records
    /// are retrievable via [`SimWorld::trace`] or, in full structured
    /// form, via [`SimWorld::telemetry`].
    pub fn enable_trace(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
    }

    /// Attaches an externally-owned telemetry sink (shared with other
    /// layers, e.g. the protocol drivers) so all events land in one
    /// stream.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry sink (disabled unless [`SimWorld::enable_trace`]
    /// or [`SimWorld::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The recorded GCS-level trace, reconstructed from the telemetry
    /// stream (empty when tracing is disabled). Protocol- and
    /// crypto-level events are available via [`SimWorld::telemetry`].
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.telemetry
            .events()
            .into_iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Sequenced { seq, sender } => Some(TraceEvent::Sequenced {
                    seq,
                    sender,
                    at: ev.at,
                }),
                EventKind::Delivered { sender, service } => Some(TraceEvent::Delivered {
                    client: match ev.actor {
                        Actor::Client(c) => c,
                        _ => return None,
                    },
                    sender,
                    service: Service::from_str_label(service)?,
                    at: ev.at,
                }),
                EventKind::ViewInstalled { view_id } => Some(TraceEvent::ViewInstalled {
                    daemon: match ev.actor {
                        Actor::Daemon(d) => d,
                        _ => return None,
                    },
                    view_id,
                    at: ev.at,
                }),
                EventKind::Retransmit { seq } => Some(TraceEvent::Retransmit {
                    daemon: match ev.actor {
                        Actor::Daemon(d) => d,
                        _ => return None,
                    },
                    seq,
                    at: ev.at,
                }),
                EventKind::FecRepair { seq } => Some(TraceEvent::FecRepaired {
                    daemon: match ev.actor {
                        Actor::Daemon(d) => d,
                        _ => return None,
                    },
                    seq,
                    at: ev.at,
                }),
                _ => None,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Setup and injection API
    // ------------------------------------------------------------------

    /// Adds a client process, assigning it to a machine round-robin
    /// (the paper distributes members uniformly over the 13 machines).
    /// The client is not yet a member of any view.
    pub fn add_client(&mut self, handler: Box<dyn Client>) -> ClientId {
        let machine = self.clients.len() % self.cfg.topology.machine_count();
        self.add_client_on(handler, machine)
    }

    /// Adds a client on a specific machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn add_client_on(&mut self, handler: Box<dyn Client>, machine: MachineId) -> ClientId {
        assert!(
            machine < self.cfg.topology.machine_count(),
            "unknown machine"
        );
        let id = self.clients.len();
        self.clients.push(ClientSlot {
            machine,
            handler: Some(handler),
            busy_until: SimTime::ZERO,
            alive: true,
            vclock: Vec::new(),
            causal_sent: 0,
            causal_buffer: Vec::new(),
        });
        id
    }

    /// Installs the initial view containing every added client, at the
    /// current instant and free of membership cost (the group's
    /// bootstrap, which no experiment measures), and starts the token.
    pub fn install_initial_view(&mut self) {
        let members: Vec<ClientId> = (0..self.clients.len()).collect();
        self.install_initial_view_of(members);
    }

    /// Installs an initial view over a subset of clients (group `0`).
    ///
    /// # Panics
    ///
    /// Panics if a view is already installed or `members` is empty.
    pub fn install_initial_view_of(&mut self, members: Vec<ClientId>) {
        self.install_initial_view_in(0, members);
    }

    /// Installs the initial view of one group over a subset of
    /// clients. Many groups can share the ring; each carries its own
    /// view state while token, links and CPU contention are shared.
    ///
    /// # Panics
    ///
    /// Panics if the group already has a view or `members` is empty.
    pub fn install_initial_view_in(&mut self, group: GroupId, members: Vec<ClientId>) {
        assert!(
            !self.views.contains_key(&group),
            "initial view already installed for group {group}"
        );
        assert!(!members.is_empty(), "initial view cannot be empty");
        let view = Rc::new(View {
            id: self.next_view_id,
            group,
            joined: members.clone(),
            members,
            left: Vec::new(),
        });
        self.next_view_id += 1;
        self.adopt_view(&view);
        for &c in &view.members {
            self.schedule(
                self.cfg.client_daemon_delay,
                Ev::ViewDeliver {
                    client: c,
                    view: Rc::clone(&view),
                },
            );
        }
        self.start_token_if_needed();
    }

    /// Injects a membership change into group `0`: `joined` clients
    /// enter the view, `left` members leave it. The new view installs
    /// after the membership protocol completes (several token
    /// rotations).
    ///
    /// # Panics
    ///
    /// Panics if no initial view exists, a joining client is unknown or
    /// already a member, or a leaving client is not a member.
    pub fn inject_change(&mut self, joined: Vec<ClientId>, left: Vec<ClientId>) {
        self.inject_change_in(0, joined, left);
    }

    /// Injects a membership change into a specific group. Changes for
    /// different groups proceed concurrently; changes within one group
    /// queue FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the group has no initial view, a joining client is
    /// unknown or already a member, or a leaving client is not a
    /// member of that group.
    pub fn inject_change_in(&mut self, group: GroupId, joined: Vec<ClientId>, left: Vec<ClientId>) {
        // Validate against the group membership as it will stand once
        // every queued change has installed.
        assert!(
            self.active.contains_key(&group) || self.views.contains_key(&group),
            "no initial view installed for group {group}"
        );
        let members = self.projected_members_of(group);
        for &j in &joined {
            assert!(j < self.clients.len(), "unknown client {j}");
            assert!(!members.contains(&j), "client {j} already a member");
        }
        for &l in &left {
            assert!(members.contains(&l), "client {l} is not a member");
        }
        self.pending_changes
            .entry(group)
            .or_default()
            .push_back(PendingChange { joined, left });
        self.maybe_start_membership(group);
    }

    /// Convenience: one client joins.
    pub fn inject_join(&mut self, client: ClientId) {
        self.inject_change(vec![client], vec![]);
    }

    /// Convenience: one member leaves.
    pub fn inject_leave(&mut self, client: ClientId) {
        self.inject_change(vec![], vec![client]);
    }

    /// Convenience: a partition removes several members at once.
    pub fn inject_partition(&mut self, leaving: Vec<ClientId>) {
        self.inject_change(vec![], leaving);
    }

    /// Convenience: a merge adds several members at once.
    pub fn inject_merge(&mut self, joining: Vec<ClientId>) {
        self.inject_change(joining, vec![]);
    }

    /// The group-`0` membership as it will stand once the active and
    /// every queued change has installed (empty before any initial
    /// view). Fault injectors consult this to aim joins/leaves at
    /// clients whose membership status is already settled in-flight.
    pub fn projected_members(&self) -> Vec<ClientId> {
        self.projected_members_of(0)
    }

    /// Per-group variant of [`SimWorld::projected_members`].
    pub fn projected_members_of(&self, group: GroupId) -> Vec<ClientId> {
        let mut members: Vec<ClientId> = match self.active.get(&group) {
            Some(active) => active.new_view.members.clone(),
            None => self
                .views
                .get(&group)
                .map(|v| v.members.clone())
                .unwrap_or_default(),
        };
        if let Some(queue) = self.pending_changes.get(&group) {
            for ch in queue {
                members.retain(|m| !ch.left.contains(m));
                members.extend_from_slice(&ch.joined);
            }
        }
        members
    }

    /// Every group id known to the world (installed, installing, or
    /// with queued changes), in ascending order.
    fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self.views.keys().copied().collect();
        for g in self.active.keys().chain(self.pending_changes.keys()) {
            if !ids.contains(g) {
                ids.push(*g);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Crashes a daemon mid-token-rotation: it stops sequencing and
    /// delivering instantly (pending submissions die with it, and a
    /// token in flight towards it is lost), and its local clients die
    /// with the machine. After
    /// [`GcsConfig::crash_detection_timeout`] the surviving daemons
    /// reform the ring, regenerate the token, and evict the dead
    /// machine's members via a membership change — in-flight messages
    /// that only the dead daemon held are recovered from the
    /// retransmission buffers during subsequent token rotations.
    ///
    /// # Panics
    ///
    /// Panics if `daemon` is out of range or has already crashed.
    pub fn inject_crash(&mut self, daemon: DaemonId) {
        assert!(daemon < self.daemons.len(), "unknown daemon {daemon}");
        assert!(
            self.daemons[daemon].alive,
            "daemon {daemon} already crashed"
        );
        self.daemons[daemon].alive = false;
        self.daemons[daemon].pending.clear();
        self.daemons[daemon].fec_buf.clear();
        // Loss-recovery windows owed to the dead daemon will never
        // close; only completed recoveries are attributed.
        self.lost_at.retain(|&(d, _), _| d != daemon);
        self.stats.daemon_crashes += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::Fault {
                action: "crash",
                target: daemon,
            },
        });
        // The machine died: its client processes die with it.
        let machine = self.daemons[daemon].machine;
        for c in 0..self.clients.len() {
            if self.clients[c].machine == machine {
                self.clients[c].alive = false;
            }
        }
        self.schedule(self.cfg.crash_detection_timeout, Ev::CrashDetect { daemon });
    }

    /// Overrides the copy-loss probability with `rate` for `duration`
    /// of virtual time (the configured `loss_rate` resumes afterwards).
    /// Gaps opened by the burst are recovered by token-driven
    /// retransmission once it ends.
    ///
    /// The burst window is half-open: copies sent in `[now, now +
    /// duration)` see `max(loss_rate, rate)`; a copy sent at exactly
    /// `now + duration` is already back on the base rate. The
    /// effective rate is the *maximum* of burst and base rate, so a
    /// `rate` of `0.0` cannot suppress a configured base loss rate.
    /// Bursts do not stack: setting a new burst while one is active
    /// replaces it entirely — last writer wins, including a shorter or
    /// milder burst cutting a longer one short.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_loss_burst(&mut self, rate: f64, duration: Duration) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "burst loss rate must be in [0, 1]"
        );
        let until = self.queue.now() + duration;
        self.loss_burst = Some((rate, until));
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::World,
            kind: EventKind::Fault {
                action: "loss_burst",
                target: (rate * 100.0) as usize,
            },
        });
    }

    /// Schedules every fault in `plan` as a simulation event at its
    /// virtual-time offset from now. Deterministic: the same plan
    /// applied to the same world yields the same run.
    pub fn apply_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        for planned in plan.faults {
            self.schedule(
                planned.after,
                Ev::Fault {
                    fault: planned.fault,
                },
            );
        }
    }

    /// Whether a daemon is still alive (has not crashed).
    pub fn daemon_alive(&self, daemon: DaemonId) -> bool {
        daemon < self.daemons.len() && self.daemons[daemon].alive
    }

    /// Whether a client process is still alive (its machine has not
    /// crashed).
    pub fn client_alive(&self, client: ClientId) -> bool {
        client < self.clients.len() && self.clients[client].alive
    }

    /// Number of daemons that have not crashed.
    pub fn alive_daemon_count(&self) -> usize {
        self.daemons.iter().filter(|d| d.alive).count()
    }

    /// Current size of the token ring (shrinks on reformation).
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The currently installed view of group `0`, if any.
    pub fn view(&self) -> Option<&View> {
        self.views.get(&0).map(Rc::as_ref)
    }

    /// The currently installed view of a specific group, if any.
    pub fn view_of(&self, group: GroupId) -> Option<&View> {
        self.views.get(&group).map(Rc::as_ref)
    }

    /// Every view a group has installed or begun installing, in id
    /// (installation) order — index 0 is the initial view, index `k`
    /// the view produced by the group's `k`-th membership change.
    pub fn views_of(&self, group: GroupId) -> Vec<Rc<View>> {
        self.view_history
            .values()
            .filter(|v| v.group == group)
            .cloned()
            .collect()
    }

    /// Number of groups with an installed view.
    pub fn group_count(&self) -> usize {
        self.views.len()
    }

    /// Whether a membership change is in progress or queued (any
    /// group).
    pub fn membership_busy(&self) -> bool {
        !self.active.is_empty() || self.pending_changes.values().any(|q| !q.is_empty())
    }

    /// Engine counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// The machine a client runs on.
    pub fn client_machine(&self, c: ClientId) -> MachineId {
        self.clients[c].machine
    }

    /// The configuration in use.
    pub fn config(&self) -> &GcsConfig {
        &self.cfg
    }

    /// Borrows a client handler, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client<T: Client>(&self, id: ClientId) -> &T {
        let handler = self.clients[id]
            .handler
            .as_ref()
            .expect("client handler taken (re-entrant access?)");
        (handler.as_ref() as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("client type mismatch")
    }

    /// Mutably borrows a client handler, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client_mut<T: Client>(&mut self, id: ClientId) -> &mut T {
        let handler = self.clients[id]
            .handler
            .as_mut()
            .expect("client handler taken (re-entrant access?)");
        (handler.as_mut() as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("client type mismatch")
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Processes one event. Returns `false` when the world is
    /// quiescent (only the idle token remains).
    pub fn step(&mut self) -> bool {
        if self.quiescent() {
            return false;
        }
        let Some((_, ev)) = self.queue.pop() else {
            return false;
        };
        if !matches!(ev, Ev::Token { .. }) {
            self.outstanding -= 1;
        }
        self.dispatch(ev);
        true
    }

    /// Runs until no work remains (the token keeps circulating but
    /// nothing else is pending).
    pub fn run_until_quiescent(&mut self) {
        while self.step() {}
    }

    /// Advances virtual time to `t`, processing every event scheduled
    /// at or before it — including idle token circulation, which
    /// [`SimWorld::step`] skips once the world is quiescent. Used by
    /// workload drivers to reach a scheduled injection instant. A `t`
    /// in the past is a no-op.
    pub fn run_until(&mut self, t: SimTime) {
        self.try_fast_forward_idle(t);
        while self.queue.peek_time().is_some_and(|pt| pt <= t) {
            let Some((_, ev)) = self.queue.pop() else {
                break;
            };
            if !matches!(ev, Ev::Token { .. }) {
                self.outstanding -= 1;
            }
            self.dispatch(ev);
        }
    }

    /// Enables or disables the idle-token fast-forward (on by
    /// default). When the world is quiescent, an idle token visit only
    /// performs ring-head bookkeeping and forwards itself, so
    /// [`SimWorld::run_until`] can skip whole rotations analytically —
    /// the final partial rotation is always stepped, which makes the
    /// clock, stats, and every future event instant identical to the
    /// fully stepped execution. Disable to force stepping (e.g. when
    /// comparing the two paths).
    pub fn set_idle_fast_forward(&mut self, on: bool) {
        self.idle_fast_forward = on;
    }

    /// Skips whole idle token rotations up to (but never beyond) `t`.
    ///
    /// Applies only in the strictly idle regime: the world is
    /// quiescent, telemetry is off (an enabled sink counts per-event
    /// dispatches, which skipping would under-report), and the queue
    /// holds exactly the one live token. A full rotation then costs
    /// `sum(hop + token_processing)` around the ring and its only
    /// effects are `token_rotations` and `last_rotation_at`, which are
    /// replayed analytically; the token event is moved forward by a
    /// whole number of periods so the stepped tail reproduces the
    /// exact event instants of a fully stepped run.
    fn try_fast_forward_idle(&mut self, t: SimTime) {
        if !self.idle_fast_forward || self.telemetry.is_enabled() {
            return;
        }
        if self.queue.len() != 1 || !self.quiescent() {
            return;
        }
        if self.queue.peek_time().is_none_or(|pt| pt > t) {
            return;
        }
        let Some((a0, ev)) = self.queue.pop() else {
            return;
        };
        let Ev::Token { daemon, gen } = ev else {
            self.queue.schedule_at(a0, ev);
            return;
        };
        let put_back = Ev::Token { daemon, gen };
        if gen != self.token_gen || !self.daemons[daemon].alive {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        let Some(pos0) = self.ring.iter().position(|&d| d == daemon) else {
            self.queue.schedule_at(a0, put_back);
            return;
        };
        // One idle rotation starting from `pos0`: per hop the token is
        // held for `token_processing` (nothing is sequenced) and then
        // travels the inter-machine latency. `offset` is the delay
        // from `a0` until the ring head's arrival (zero when the token
        // is already at the head: that arrival is `a0` itself).
        let n = self.ring.len();
        let mut period = Duration::ZERO;
        let mut offset = Duration::ZERO;
        for i in 0..n {
            let p = self.ring[(pos0 + i) % n];
            let q = self.ring[(pos0 + i + 1) % n];
            let hop = self
                .cfg
                .topology
                .machine_latency(self.daemons[p].machine, self.daemons[q].machine);
            period = period + hop + self.cfg.token_processing;
            if (pos0 + i + 1) % n == 0 && pos0 != 0 {
                offset = period;
            }
        }
        if period.as_nanos() == 0 {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        let k = t.since(a0).as_nanos() / period.as_nanos();
        if k == 0 {
            self.queue.schedule_at(a0, put_back);
            return;
        }
        // Head arrivals in `[a0, a0 + k*period)`: exactly `k` of them,
        // at `a0 + offset + j*period` for `j` in `0..k`.
        self.stats.token_rotations += k;
        self.last_rotation_at =
            Some(a0 + offset + Duration::from_nanos((k - 1) * period.as_nanos()));
        self.queue
            .schedule_at(a0 + Duration::from_nanos(k * period.as_nanos()), put_back);
    }

    /// Runs while `pred` returns `true` and work remains. Returns
    /// `true` if the run stopped because the predicate turned false
    /// (as opposed to quiescence).
    pub fn run_while(&mut self, mut pred: impl FnMut(&SimWorld) -> bool) -> bool {
        loop {
            if !pred(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// `true` when nothing but the idle token remains. Crashed daemons
    /// are excluded: they will never deliver again, and the reformed
    /// ring no longer waits on them.
    pub fn quiescent(&self) -> bool {
        self.outstanding == 0
            && self.active.is_empty()
            && self.pending_changes.values().all(VecDeque::is_empty)
            && self
                .daemons
                .iter()
                .filter(|d| d.alive)
                .all(|d| d.pending.is_empty() && d.delivered == self.next_seq - 1)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, delay: Duration, ev: Ev) {
        if !matches!(ev, Ev::Token { .. }) {
            self.outstanding += 1;
        }
        self.queue.schedule(delay, ev);
    }

    fn start_token_if_needed(&mut self) {
        if !self.token_started {
            self.token_started = true;
            let gen = self.token_gen;
            self.queue.schedule(
                Duration::ZERO,
                Ev::Token {
                    daemon: self.ring[0],
                    gen,
                },
            );
        }
    }

    fn adopt_view(&mut self, view: &Rc<View>) {
        self.views.insert(view.group, Rc::clone(view));
        self.view_history.insert(view.id, Rc::clone(view));
        self.stats.views_installed += 1;
    }

    fn maybe_start_membership(&mut self, group: GroupId) {
        if self.active.contains_key(&group) {
            return;
        }
        let Some(view) = self.views.get(&group).cloned() else {
            return;
        };
        let Some(change) = self
            .pending_changes
            .get_mut(&group)
            .and_then(VecDeque::pop_front)
        else {
            return;
        };
        let mut members: Vec<ClientId> = view
            .members
            .iter()
            .copied()
            .filter(|m| !change.left.contains(m))
            .collect();
        members.extend_from_slice(&change.joined);
        let new_view = Rc::new(View {
            id: self.next_view_id,
            group,
            members,
            joined: change.joined,
            left: change.left,
        });
        self.next_view_id += 1;
        self.view_history.insert(new_view.id, Rc::clone(&new_view));
        self.active.insert(
            group,
            ActiveMembership {
                new_view,
                rounds_left: self.cfg.membership_rounds,
                installing: false,
                installed: vec![false; self.daemons.len()],
            },
        );
    }

    /// Stable metric name of an event variant (the sim event loop's
    /// per-kind dispatch counters).
    fn ev_metric_name(ev: &Ev) -> &'static str {
        match ev {
            Ev::Token { .. } => "ev_token",
            Ev::DaemonRecv { .. } => "ev_daemon_recv",
            Ev::ClientSubmit { .. } => "ev_client_submit",
            Ev::FifoArrive { .. } => "ev_fifo_arrive",
            Ev::ClientDeliver { .. } => "ev_client_deliver",
            Ev::ViewDeliver { .. } => "ev_view_deliver",
            Ev::Retransmit { .. } => "ev_retransmit",
            Ev::ParityRecv { .. } => "ev_parity_recv",
            Ev::CausalArrive { .. } => "ev_causal_arrive",
            Ev::CrashDetect { .. } => "ev_crash_detect",
            Ev::Fault { .. } => "ev_fault",
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        // Sim-layer event-loop metrics: total dispatches, per-kind
        // dispatches, and the peak of in-flight (non-token) events.
        self.telemetry
            .metric_inc(Key::new(Layer::Sim, "events_dispatched"), 1);
        self.telemetry
            .metric_inc(Key::new(Layer::Sim, Self::ev_metric_name(&ev)), 1);
        let outstanding = self.outstanding;
        self.telemetry
            .gauge_max(Key::new(Layer::Sim, "outstanding_peak"), || {
                outstanding as f64
            });
        match ev {
            Ev::Token { daemon, gen } => self.on_token(daemon, gen),
            Ev::DaemonRecv { daemon, msg } => self.on_daemon_recv(daemon, msg),
            Ev::ClientSubmit { client, out } => self.on_client_submit(client, out),
            Ev::FifoArrive { daemon, delivery } => self.on_fifo_arrive(daemon, delivery),
            Ev::ClientDeliver { client, delivery } => self.deliver_to_client(client, delivery),
            Ev::ViewDeliver { client, view } => self.deliver_view_to_client(client, &view),
            Ev::Retransmit { seq, to, from } => self.on_retransmit(seq, to, from),
            Ev::ParityRecv { daemon, shard } => self.on_parity_recv(daemon, shard),
            Ev::CausalArrive { client, msg } => self.on_causal_arrive(client, msg),
            Ev::CrashDetect { daemon } => self.on_crash_detect(daemon),
            Ev::Fault { fault } => self.on_fault(fault),
        }
    }

    /// Ring reformation, `crash_detection_timeout` after a crash: the
    /// dead daemon leaves the ring, the token regenerates at the ring
    /// head (invalidating any token still in flight), and the dead
    /// machine's members are evicted via a membership change.
    fn on_crash_detect(&mut self, daemon: DaemonId) {
        self.ring.retain(|&d| d != daemon);
        self.stats.ring_reformations += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::Fault {
                action: "crash_detected",
                target: daemon,
            },
        });
        self.token_gen += 1;
        if let Some(&head) = self.ring.first() {
            let gen = self.token_gen;
            self.queue
                .schedule(Duration::ZERO, Ev::Token { daemon: head, gen });
        }
        // The dead daemon can never install a pending view; any
        // membership waiting only on it completes now.
        for group in self.group_ids() {
            self.check_membership_complete(group);
        }
        // Its members leave via a view change, per group (if any view
        // exists yet).
        let machine = self.daemons[daemon].machine;
        for group in self.group_ids() {
            let lost: Vec<ClientId> = self
                .projected_members_of(group)
                .into_iter()
                .filter(|&c| self.clients[c].machine == machine)
                .collect();
            if !lost.is_empty() {
                self.inject_change_in(group, vec![], lost);
            }
        }
    }

    /// Executes one scheduled fault from a [`crate::FaultPlan`]. Faults
    /// that no longer apply (daemon already dead, members already
    /// gone/present) degrade to no-ops so randomized plans stay valid.
    fn on_fault(&mut self, fault: crate::fault::Fault) {
        use crate::fault::Fault;
        match fault {
            Fault::Crash { daemon } => {
                if daemon < self.daemons.len() && self.daemons[daemon].alive {
                    self.inject_crash(daemon);
                }
            }
            Fault::LossBurst { rate, duration } => self.set_loss_burst(rate, duration),
            Fault::Partition { members } => {
                let current = self.projected_members();
                let leaving: Vec<ClientId> = members
                    .into_iter()
                    .filter(|m| current.contains(m))
                    .collect();
                if !leaving.is_empty() {
                    let at = self.queue.now();
                    let count = leaving.len();
                    self.telemetry.record(|| Event {
                        at,
                        dur: Duration::ZERO,
                        actor: Actor::World,
                        kind: EventKind::Fault {
                            action: "partition",
                            target: count,
                        },
                    });
                    self.inject_partition(leaving);
                }
            }
            Fault::Heal { members } => {
                let current = self.projected_members();
                let joining: Vec<ClientId> = members
                    .into_iter()
                    .filter(|&m| {
                        m < self.clients.len()
                            && !current.contains(&m)
                            && self.daemons[self.clients[m].machine].alive
                    })
                    .collect();
                if !joining.is_empty() {
                    let at = self.queue.now();
                    let count = joining.len();
                    self.telemetry.record(|| Event {
                        at,
                        dur: Duration::ZERO,
                        actor: Actor::World,
                        kind: EventKind::Fault {
                            action: "heal",
                            target: count,
                        },
                    });
                    self.inject_merge(joining);
                }
            }
        }
    }

    fn on_token(&mut self, daemon_id: DaemonId, gen: u64) {
        // A stale token (superseded by a ring reformation) or a token
        // reaching a crashed daemon vanishes; crash detection
        // regenerates exactly one replacement.
        if gen != self.token_gen || !self.daemons[daemon_id].alive {
            return;
        }

        // Rotation boundary bookkeeping at the ring head.
        if self.ring.first() == Some(&daemon_id) {
            self.stats.token_rotations += 1;
            let rotation = self.stats.token_rotations;
            let at = self.queue.now();
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor: Actor::Daemon(daemon_id),
                kind: EventKind::TokenRotation { rotation },
            });
            if let Some(prev) = self.last_rotation_at {
                self.telemetry
                    .metric_observe(Key::new(Layer::Gcs, "token_rotation_ms"), || {
                        at.since(prev).as_millis_f64()
                    });
            }
            self.last_rotation_at = Some(at);
            // View-synchrony flush: the new view may only install once
            // every message sent in the old view has been delivered
            // everywhere (Spread flushes before installing a view).
            // Without this, a message of epoch E could arrive after a
            // member entered epoch E+1 and be discarded — breaking
            // cascaded membership changes.
            let flushed = self.outstanding == 0
                && self
                    .daemons
                    .iter()
                    .filter(|d| d.alive)
                    .all(|d| d.pending.is_empty() && d.delivered == self.next_seq - 1);
            // Every group's membership protocol advances on the same
            // ring-head pass: the rounds are shared token rotations,
            // and the flush condition is global because the sequencer
            // (and therefore stability) is shared across groups.
            for active in self.active.values_mut() {
                if !active.installing {
                    if active.rounds_left > 0 {
                        active.rounds_left -= 1;
                    }
                    if active.rounds_left == 0 && flushed {
                        active.installing = true;
                    }
                }
            }
        }

        // 1. Sequence and broadcast pending submissions (flow control).
        //    The messages sequenced in one visit form one FEC
        //    generation (step 1a fans out its parity shards).
        let mut sent = 0usize;
        let mut generation: Vec<Rc<WireMsg>> = Vec::new();
        while sent < self.cfg.flow_control_max_msgs {
            let Some(sub) = self.daemons[daemon_id].pending.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let msg = Rc::new(WireMsg {
                seq,
                sender: sub.sender,
                dest: sub.dest,
                view_id: sub.view_id,
                payload: sub.payload,
                origin: daemon_id,
            });
            self.stats.agreed_messages += 1;
            let at = self.queue.now();
            let sender = msg.sender;
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor: Actor::Daemon(daemon_id),
                kind: EventKind::Sequenced { seq, sender },
            });
            self.sent_msgs.insert(seq, Rc::clone(&msg));
            // The sender's daemon holds its own message instantly.
            self.store_at_daemon(daemon_id, Rc::clone(&msg));
            let size_cost = self.wire_cost(msg.payload.len());
            for peer in 0..self.daemons.len() {
                if peer == daemon_id || !self.daemons[peer].alive {
                    continue;
                }
                if self.lose_copy() {
                    self.stats.messages_lost += 1;
                    self.losses_observed = true;
                    self.lost_at.entry((peer, seq)).or_insert(at);
                    continue;
                }
                let latency = self
                    .cfg
                    .topology
                    .machine_latency(self.daemons[daemon_id].machine, self.daemons[peer].machine);
                let delay = latency + size_cost + self.cfg.per_message_processing;
                self.schedule(
                    delay,
                    Ev::DaemonRecv {
                        daemon: peer,
                        msg: Rc::clone(&msg),
                    },
                );
            }
            generation.push(msg);
            sent += 1;
        }

        // 1a. FEC parity fan-out over this visit's generation: with a
        //     parity budget of `r`, every peer can reconstruct up to
        //     `r` lost data messages locally instead of waiting whole
        //     token rotations for retransmission. Skipped entirely at
        //     budget 0 (no extra RNG draws, no extra events — the
        //     `r = 0` engine is byte-identical to the pre-FEC one).
        if !generation.is_empty() {
            let r = self.parity_budget(generation.len());
            if r > 0 {
                self.fan_out_parity(daemon_id, &generation, r);
            }
        }
        // Flow-control metrics: how much this token visit sequenced,
        // and how much the budget deferred to the next rotation (the
        // paper's footnote-10 wait is exactly this backlog).
        if sent > 0 {
            self.telemetry
                .metric_inc(Key::new(Layer::Gcs, "flow_sequenced"), sent as u64);
            self.telemetry
                .metric_observe(Key::new(Layer::Gcs, "flow_sent_per_visit"), || sent as f64);
        }
        let backlog = self.daemons[daemon_id].pending.len();
        if backlog > 0 {
            self.telemetry
                .metric_inc(Key::new(Layer::Gcs, "flow_deferred"), backlog as u64);
            self.telemetry
                .gauge_max(Key::new(Layer::Gcs, "flow_backlog_peak"), || backlog as f64);
        }

        // 1b. Request retransmission of any gap this daemon observes
        //     (the token reveals that higher sequence numbers exist —
        //     Totem-style negative acknowledgement). Armed only once a
        //     data copy has actually been dropped (sticky
        //     `losses_observed`) or a crash may have eaten copies —
        //     never by the mere *possibility* of loss, so runs where
        //     every copy happens to arrive issue no spurious requests
        //     for messages that are merely in flight.
        if self.cfg.fec_adaptive {
            self.update_loss_ewma(daemon_id);
        }
        let lossy = self.losses_observed || self.stats.daemon_crashes > 0;
        if lossy && self.daemons[daemon_id].contiguous < self.next_seq - 1 {
            self.maybe_request_missing(daemon_id);
        }

        // 2. Report our contiguous mark and recompute the aru (the
        //    minimum over every alive daemon's latest report).
        self.daemons[daemon_id].reported = self.daemons[daemon_id].contiguous;
        self.recompute_aru();

        // 3. Deliver stable messages to local clients.
        self.deliver_stable(daemon_id);

        // 4. Install pending views whose membership protocols are done
        //    (ascending group order — BTreeMap iteration — so the
        //    install sequence is deterministic).
        let mut installs: Vec<Rc<View>> = Vec::new();
        for active in self.active.values_mut() {
            if active.installing && !active.installed[daemon_id] {
                active.installed[daemon_id] = true;
                installs.push(Rc::clone(&active.new_view));
            }
        }
        for view in installs {
            self.install_view_at_daemon(daemon_id, &view);
        }

        // 5. Forward the token to the ring successor. (A daemon that
        //    crashed between dispatch and here has already returned
        //    above; one removed from the ring at detection no longer
        //    receives tokens of the current generation.)
        let Some(pos) = self.ring.iter().position(|&d| d == daemon_id) else {
            return;
        };
        let next = self.ring[(pos + 1) % self.ring.len()];
        let hop = self
            .cfg
            .topology
            .machine_latency(self.daemons[daemon_id].machine, self.daemons[next].machine);
        let hold = self.cfg.token_processing + self.cfg.per_message_processing * sent as u64;
        self.queue
            .schedule(hop + hold, Ev::Token { daemon: next, gen });
    }

    /// Recomputes the token's aru over the alive daemons. When every
    /// daemon has crashed there is no ring left to agree on stability:
    /// the aru is left untouched — a graceful no-op instead of a panic
    /// on the empty minimum.
    fn recompute_aru(&mut self) {
        if let Some(min) = self
            .daemons
            .iter()
            .filter(|d| d.alive)
            .map(|d| d.reported)
            .min()
        {
            self.token_aru = min;
        }
    }

    /// The loss probability in force at instant `now`.
    ///
    /// A burst combines with the configured base rate via `max` while
    /// its half-open window `[start, start + duration)` lasts: at the
    /// exact expiry instant the burst no longer applies. An expired
    /// burst is cleared here (lazily, on the first draw at or past its
    /// boundary) so `loss_burst` never reports a stale window.
    fn effective_loss_rate_at(&mut self, now: SimTime) -> f64 {
        match self.loss_burst {
            Some((rate, until)) if now < until => self.cfg.loss_rate.max(rate),
            Some(_) => {
                self.loss_burst = None;
                self.cfg.loss_rate
            }
            None => self.cfg.loss_rate,
        }
    }

    /// Deterministic Bernoulli draw for one message copy.
    fn lose_copy(&mut self) -> bool {
        let rate = self.effective_loss_rate_at(self.queue.now());
        if rate <= 0.0 {
            return false;
        }
        let x = (self.loss_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < rate
    }

    /// An alive daemon able to re-send `seq` to `requester`: the origin
    /// if it survives, otherwise any other surviving ring member (the
    /// retransmission buffers are global — every daemon that received
    /// the message can source it).
    fn retransmit_source(&self, origin: DaemonId, requester: DaemonId) -> Option<DaemonId> {
        if self.daemons[origin].alive {
            return Some(origin);
        }
        self.ring
            .iter()
            .copied()
            .find(|&d| d != requester && self.daemons[d].alive)
    }

    /// Ask retransmission sources to re-send up to
    /// [`GcsConfig::recovery_batch`] messages this daemon is missing
    /// below the global high-water mark. Wider gaps recover over
    /// several token visits; each visit that issues at least one
    /// request counts as one retransmission round.
    fn request_missing(&mut self, daemon: DaemonId) {
        let have_upto = self.daemons[daemon].contiguous;
        let missing: Vec<u64> = ((have_upto + 1)..self.next_seq)
            .filter(|seq| !self.daemons[daemon].received.contains_key(seq))
            .take(self.cfg.recovery_batch)
            .collect();
        let mut requested = 0u64;
        for seq in missing {
            let Some(msg) = self.sent_msgs.get(&seq) else {
                continue;
            };
            if msg.origin == daemon {
                continue;
            }
            let Some(source) = self.retransmit_source(msg.origin, daemon) else {
                // Sole survivor: nobody is left to recover from, so
                // synthesize the copy from the global buffer (in a
                // real deployment the reformation would drop the
                // message from the order; the simulation keeps the
                // order intact for determinism).
                let Some(msg) = self.sent_msgs.get(&seq).map(Rc::clone) else {
                    continue;
                };
                self.settle_recovery(daemon, seq, RecoveryPath::Retransmission);
                self.store_at_daemon(daemon, msg);
                requested += 1;
                continue;
            };
            // Request travels to the source; it re-sends from there.
            let latency = self
                .cfg
                .topology
                .machine_latency(self.daemons[daemon].machine, self.daemons[source].machine);
            self.schedule(
                latency + self.cfg.per_message_processing,
                Ev::Retransmit {
                    seq,
                    to: daemon,
                    from: source,
                },
            );
            requested += 1;
        }
        if requested > 0 {
            self.stats.retransmission_rounds += 1;
        }
    }

    fn on_retransmit(&mut self, seq: u64, to: DaemonId, from: DaemonId) {
        if self.daemons[to].received.contains_key(&seq) {
            return; // already recovered meanwhile
        }
        if !self.daemons[to].alive {
            return; // requester crashed while the request was in flight
        }
        if !self.daemons[from].alive {
            return; // source crashed; the next token visit re-requests
        }
        let Some(msg) = self.sent_msgs.get(&seq).cloned() else {
            return;
        };
        self.stats.retransmissions += 1;
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(to),
            kind: EventKind::Retransmit { seq },
        });
        // The re-sent copy can be lost as well; the next token visit
        // re-requests it. The original `lost_at` instant stays: the
        // recovery window runs from the *first* loss of the copy.
        if self.lose_copy() {
            self.stats.messages_lost += 1;
            self.losses_observed = true;
            return;
        }
        let latency = self
            .cfg
            .topology
            .machine_latency(self.daemons[from].machine, self.daemons[to].machine);
        let size_cost = self.wire_cost(msg.payload.len());
        self.schedule(
            latency + size_cost + self.cfg.per_message_processing,
            Ev::DaemonRecv { daemon: to, msg },
        );
    }

    /// Wire time for `len` bytes of payload on any hop (whole-KB
    /// granularity, rounded up). Shared by data, parity and FIFO
    /// paths so coded and plain traffic are charged identically.
    fn wire_cost(&self, len: usize) -> Duration {
        let kb = (len as u64).div_ceil(1024);
        self.cfg.per_kb * kb
    }

    /// Closes the open loss-recovery window of `(daemon, seq)` — if
    /// one is open — attributing the elapsed virtual time to `path`.
    /// Every lost copy's window is closed by exactly one path, so the
    /// two attribution buckets sum exactly to the total recovery time
    /// ([`WorldStats::recovery_ns`]).
    fn settle_recovery(&mut self, daemon: DaemonId, seq: u64, path: RecoveryPath) {
        let Some(t0) = self.lost_at.remove(&(daemon, seq)) else {
            return;
        };
        let dt = self.queue.now().since(t0);
        match path {
            RecoveryPath::FecRepair => {
                self.stats.fec_repair_recovery_ns += dt.as_nanos();
                self.telemetry
                    .metric_observe(Key::new(Layer::Gcs, "fec_repair_ms"), || dt.as_millis_f64());
            }
            RecoveryPath::Retransmission => {
                self.stats.retransmission_recovery_ns += dt.as_nanos();
                self.telemetry
                    .metric_observe(Key::new(Layer::Gcs, "retransmission_ms"), || {
                        dt.as_millis_f64()
                    });
            }
        }
    }

    /// Parity shards to append to a generation of `k` data messages:
    /// the configured floor, or — under the adaptive controller — the
    /// EWMA loss estimate scaled to the expected losses per generation
    /// (doubled for headroom) and clamped to `[fec_parity,
    /// fec_parity_max]`. Always capped so `k + r` fits the code's
    /// field.
    fn parity_budget(&self, k: usize) -> usize {
        let r = if self.cfg.fec_adaptive {
            let want = (self.loss_ewma * 2.0 * k as f64).ceil() as usize;
            want.clamp(self.cfg.fec_parity, self.cfg.fec_parity_max)
        } else {
            self.cfg.fec_parity
        };
        r.min(crate::fec::MAX_SHARDS.saturating_sub(k))
    }

    /// Encodes this token visit's generation and broadcasts its `r`
    /// parity shards to every other alive daemon. Parity copies ride
    /// the same loss process as data copies, but a lost parity shard
    /// is simply gone: parity is never retransmitted and never opens a
    /// recovery window (the data it protects still recovers via
    /// retransmission).
    fn fan_out_parity(&mut self, origin: DaemonId, generation: &[Rc<WireMsg>], r: usize) {
        let records: Vec<Vec<u8>> = generation.iter().map(|m| encode_record(m)).collect();
        let Some(parity) = crate::fec::encode(&records, r) else {
            return;
        };
        let k = generation.len();
        let Some(first_seq) = generation.first().map(|m| m.seq) else {
            return;
        };
        for (j, body) in parity.into_iter().enumerate() {
            let shard = Rc::new(ParityShard {
                first_seq,
                k,
                index: k + j,
                body,
            });
            let size_cost = self.wire_cost(shard.body.len());
            for peer in 0..self.daemons.len() {
                if peer == origin || !self.daemons[peer].alive {
                    continue;
                }
                self.stats.parity_shards_sent += 1;
                if self.lose_copy() {
                    continue;
                }
                let latency = self
                    .cfg
                    .topology
                    .machine_latency(self.daemons[origin].machine, self.daemons[peer].machine);
                self.schedule(
                    latency + size_cost + self.cfg.per_message_processing,
                    Ev::ParityRecv {
                        daemon: peer,
                        shard: Rc::clone(&shard),
                    },
                );
            }
        }
    }

    /// Folds the gap this daemon observes at a token visit into the
    /// EWMA loss estimate driving the adaptive parity budget. The
    /// per-visit sample is the missing fraction of the sequence span
    /// the token proves to exist (zero over an empty span). In-flight
    /// messages count as missing, which makes the estimator
    /// conservative — it over-provisions parity rather than under.
    fn update_loss_ewma(&mut self, daemon: DaemonId) {
        let d = &self.daemons[daemon];
        let span = (self.next_seq - 1).saturating_sub(d.contiguous);
        let sample = if span == 0 {
            0.0
        } else {
            let missing = ((d.contiguous + 1)..self.next_seq)
                .filter(|s| !d.received.contains_key(s))
                .count();
            missing as f64 / span as f64
        };
        let a = self.cfg.loss_ewma_alpha;
        self.loss_ewma = a * sample + (1.0 - a) * self.loss_ewma;
    }

    /// Applies the adaptive backoff policy in front of
    /// [`SimWorld::request_missing`]. With a zero backoff base the
    /// legacy policy holds — a daemon with a gap requests on every
    /// token visit — and this function adds no RNG draws or state
    /// changes, keeping the engine byte-identical to the pre-backoff
    /// one.
    ///
    /// With a non-zero base a *fresh* gap first arms one backoff
    /// window without requesting: in-flight parity shards (or late
    /// copies) get that window to close the gap locally, so a run
    /// whose parity budget covers its losses spends **zero** request
    /// rounds. Only a gap that survives the window costs a round, and
    /// every further no-progress round doubles the window (capped)
    /// and counts a strike toward the give-up escalation.
    fn maybe_request_missing(&mut self, daemon: DaemonId) {
        if self.cfg.retrans_backoff == Duration::ZERO {
            self.request_missing(daemon);
            return;
        }
        let now = self.queue.now();
        let contiguous = self.daemons[daemon].contiguous;
        if let Some(prev) = self.daemons[daemon].retrans.awaiting_since {
            if contiguous > prev {
                // Progress since the last arm/request: that episode is
                // over. The still-open gap (residual or newly lost) is
                // a fresh episode and re-arms below.
                let st = &mut self.daemons[daemon].retrans;
                st.level = 0;
                st.strikes = 0;
                st.awaiting_since = None;
            }
        }
        if self.daemons[daemon].retrans.awaiting_since.is_none() {
            // Fresh gap: arm the window, don't spend a round yet.
            let delay = self.jittered_backoff(0);
            let st = &mut self.daemons[daemon].retrans;
            st.awaiting_since = Some(contiguous);
            st.next_at = now + delay;
            return;
        }
        if now < self.daemons[daemon].retrans.next_at {
            return;
        }
        // A full window elapsed with no progress: spend a round.
        {
            let st = &mut self.daemons[daemon].retrans;
            st.strikes += 1;
            st.level = (st.level + 1).min(16);
        }
        self.request_missing(daemon);
        let delay = self.jittered_backoff(self.daemons[daemon].retrans.level);
        let st = &mut self.daemons[daemon].retrans;
        st.awaiting_since = Some(contiguous);
        st.next_at = now + delay;
        if self.cfg.retrans_give_up > 0
            && self.daemons[daemon].retrans.strikes >= self.cfg.retrans_give_up
        {
            self.escalate_give_up(daemon);
        }
    }

    /// One backoff window at the given exponential level: the full
    /// window is `base << level` capped at the configured maximum,
    /// then deterministic jitter into `[full/2, full]` from the
    /// dedicated stream (decorrelates the ring's request rounds
    /// without touching the loss draws).
    fn jittered_backoff(&mut self, level: u32) -> Duration {
        let full = self
            .cfg
            .retrans_backoff
            .as_nanos()
            .saturating_mul(1u64 << level.min(63))
            .min(self.cfg.retrans_backoff_max.as_nanos())
            .max(1);
        let u = (self.retrans_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let half = full / 2;
        Duration::from_nanos(half + ((full - half) as f64 * u) as u64)
    }

    /// Give-up escalation: after [`GcsConfig::retrans_give_up`]
    /// consecutive no-progress request rounds the requester declares
    /// the origin of its oldest missing message unreachable and
    /// escalates to the crash machinery — the ring reforms without the
    /// origin and the surviving buffers source the recovery (exactly
    /// the PR 3 crash-detection path).
    fn escalate_give_up(&mut self, daemon: DaemonId) {
        let st = &mut self.daemons[daemon].retrans;
        st.strikes = 0;
        st.level = 0;
        st.awaiting_since = None;
        let first_missing = self.daemons[daemon].contiguous + 1;
        let Some(origin) = self.sent_msgs.get(&first_missing).map(|m| m.origin) else {
            return;
        };
        if origin == daemon || !self.daemons[origin].alive || self.ring.len() <= 1 {
            return;
        }
        let at = self.queue.now();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::Fault {
                action: "give_up",
                target: origin,
            },
        });
        self.inject_crash(origin);
    }

    fn on_parity_recv(&mut self, daemon: DaemonId, shard: Rc<ParityShard>) {
        if !self.daemons[daemon].alive {
            return; // the shard arrived at a crashed daemon
        }
        let first = shard.first_seq;
        let k = shard.k;
        let complete = {
            let d = &self.daemons[daemon];
            (first..first + k as u64).all(|s| s <= d.contiguous || d.received.contains_key(&s))
        };
        if complete {
            return; // nothing to repair; drop the shard
        }
        self.daemons[daemon]
            .fec_buf
            .entry(first)
            .or_insert_with(|| FecGenBuf {
                k,
                shards: BTreeMap::new(),
            })
            .shards
            .insert(shard.index, shard);
        self.try_fec_repair(daemon, first);
    }

    /// Attempts to decode generation `first` at `daemon` from the data
    /// messages it holds plus its buffered parity shards. On success
    /// every missing message of the generation is reconstructed
    /// locally, its recovery window attributed to FEC repair, and the
    /// buffer entry dropped.
    fn try_fec_repair(&mut self, daemon: DaemonId, first: u64) {
        let repaired: Vec<(u64, WireMsg)> = {
            let d = &self.daemons[daemon];
            let Some(buf) = d.fec_buf.get(&first) else {
                return;
            };
            let k = buf.k;
            let held = |s: u64| s <= d.contiguous || d.received.contains_key(&s);
            let missing: Vec<u64> = (first..first + k as u64).filter(|&s| !held(s)).collect();
            if missing.is_empty() {
                Vec::new() // generation complete: drop the buffer below
            } else if buf.shards.len() < missing.len() {
                return; // not yet decodable; keep buffering
            } else {
                // Re-serialize the data records the daemon holds (their
                // content is identical to the origin's encoding input),
                // pad to the generation's record length, add the parity
                // rows, and interpolate the missing points.
                let body_len = buf.shards.values().map(|s| s.body.len()).max().unwrap_or(0);
                let mut have: Vec<(usize, Vec<u8>)> = Vec::new();
                for (i, s) in (first..first + k as u64).enumerate() {
                    if !held(s) {
                        continue;
                    }
                    let Some(msg) = self.sent_msgs.get(&s) else {
                        continue;
                    };
                    let mut rec = encode_record(msg);
                    if rec.len() < body_len {
                        rec.resize(body_len, 0);
                    }
                    have.push((i, rec));
                }
                for (&idx, shard) in &buf.shards {
                    have.push((idx, shard.body.clone()));
                }
                let refs: Vec<(usize, &[u8])> =
                    have.iter().map(|(i, b)| (*i, b.as_slice())).collect();
                let Some(data) = crate::fec::decode(k, &refs) else {
                    return;
                };
                let mut out = Vec::new();
                for &s in &missing {
                    let idx = (s - first) as usize;
                    let Some(msg) = decode_record(&data[idx]) else {
                        return; // malformed record: leave the buffer for retransmission
                    };
                    if msg.seq != s {
                        return;
                    }
                    out.push((s, msg));
                }
                out
            }
        };
        self.daemons[daemon].fec_buf.remove(&first);
        let at = self.queue.now();
        for (s, msg) in repaired {
            self.stats.fec_repairs += 1;
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor: Actor::Daemon(daemon),
                kind: EventKind::FecRepair { seq: s },
            });
            self.settle_recovery(daemon, s, RecoveryPath::FecRepair);
            self.store_at_daemon(daemon, Rc::new(msg));
        }
    }

    fn store_at_daemon(&mut self, daemon: DaemonId, msg: Rc<WireMsg>) {
        let d = &mut self.daemons[daemon];
        d.received.insert(msg.seq, msg);
        while d.received.contains_key(&(d.contiguous + 1)) {
            d.contiguous += 1;
        }
    }

    fn on_daemon_recv(&mut self, daemon: DaemonId, msg: Rc<WireMsg>) {
        if !self.daemons[daemon].alive {
            return; // the copy arrived at a crashed daemon
        }
        let seq = msg.seq;
        // A copy whose first transmission was lost arrives here only
        // via retransmission — close the recovery window into the
        // retransmission bucket.
        self.settle_recovery(daemon, seq, RecoveryPath::Retransmission);
        self.store_at_daemon(daemon, msg);
        // A late-arriving data copy can complete a generation that
        // already buffered parity: re-try the repair so the buffer
        // drains as soon as it becomes decodable.
        if !self.daemons[daemon].fec_buf.is_empty() {
            let generation = self.daemons[daemon]
                .fec_buf
                .iter()
                .find(|(&first, buf)| first <= seq && seq < first + buf.k as u64)
                .map(|(&first, _)| first);
            if let Some(first) = generation {
                self.try_fec_repair(daemon, first);
            }
        }
    }

    /// Delivers every received message with `seq <= token_aru` to this
    /// daemon's local clients.
    fn deliver_stable(&mut self, daemon: DaemonId) {
        let upto = self.token_aru.min(self.daemons[daemon].contiguous);
        while self.daemons[daemon].delivered < upto {
            let seq = self.daemons[daemon].delivered + 1;
            let Some(msg) = self.daemons[daemon].received.remove(&seq) else {
                break;
            };
            self.daemons[daemon].delivered = seq;
            self.deliver_wire_msg(daemon, &msg);
        }
    }

    fn deliver_wire_msg(&mut self, daemon: DaemonId, msg: &WireMsg) {
        let Some(view) = self.view_history.get(&msg.view_id) else {
            return;
        };
        let members = view.members.clone();
        let machine = self.daemons[daemon].machine;
        let targets: Vec<ClientId> = members
            .into_iter()
            .filter(|&c| self.clients[c].machine == machine && self.clients[c].alive)
            .filter(|&c| match msg.dest {
                Dest::All => true,
                Dest::One(t) => t == c,
            })
            .collect();
        for c in targets {
            let delivery = Delivery {
                sender: msg.sender,
                service: Service::Agreed,
                dest: msg.dest,
                view_id: msg.view_id,
                payload: msg.payload.clone(),
            };
            self.schedule(
                self.cfg.client_daemon_delay,
                Ev::ClientDeliver {
                    client: c,
                    delivery,
                },
            );
        }
    }

    fn on_client_submit(&mut self, client: ClientId, out: Outgoing) {
        let machine = self.clients[client].machine;
        if !self.clients[client].alive || !self.daemons[machine].alive {
            return; // the client or its daemon died while this was in flight
        }
        // View-synchrony: the message belongs to the view its sender
        // had installed at send time (not the engine's global view,
        // which flips only once every daemon has installed).
        let view_id = out.view_id;
        self.stats.payload_bytes += out.payload.len() as u64;
        match out.service {
            Service::Agreed => {
                self.daemons[machine].pending.push_back(Submission {
                    sender: client,
                    dest: out.dest,
                    view_id,
                    payload: out.payload,
                });
            }
            Service::Causal => {
                self.stats.fifo_messages += 1;
                // Stamp with the sender's vector clock; the own entry
                // carries the per-sender send sequence (the clock
                // itself advances when the loop-back copy delivers).
                self.grow_vclock(client);
                let seq = self.clients[client].causal_sent + 1;
                self.clients[client].causal_sent = seq;
                let mut vc = self.clients[client].vclock.clone();
                vc[client] = seq;
                let msg = CausalMsg {
                    sender: client,
                    view_id,
                    payload: out.payload,
                    vc,
                };
                let size_cost = self.wire_cost(msg.payload.len());
                let members = self
                    .view_history
                    .get(&view_id)
                    .map(|v| v.members.clone())
                    .unwrap_or_default();
                for target in members {
                    if target == client {
                        // Local delivery is immediate (own messages are
                        // already in causal order).
                        self.on_causal_arrive(client, msg.clone());
                        continue;
                    }
                    let latency = self
                        .cfg
                        .topology
                        .machine_latency(machine, self.clients[target].machine)
                        + size_cost
                        + self.cfg.per_message_processing
                        + self.cfg.client_daemon_delay;
                    self.schedule(
                        latency,
                        Ev::CausalArrive {
                            client: target,
                            msg: msg.clone(),
                        },
                    );
                }
            }
            Service::Fifo => {
                self.stats.fifo_messages += 1;
                let size_cost = self.wire_cost(out.payload.len());
                let delivery = Delivery {
                    sender: client,
                    service: Service::Fifo,
                    dest: out.dest,
                    view_id,
                    payload: out.payload,
                };
                match out.dest {
                    Dest::One(target) => {
                        let td = self.clients[target].machine;
                        let latency = self.cfg.topology.machine_latency(machine, td)
                            + size_cost
                            + self.cfg.per_message_processing;
                        self.schedule(
                            latency,
                            Ev::FifoArrive {
                                daemon: td,
                                delivery,
                            },
                        );
                    }
                    Dest::All => {
                        for td in 0..self.daemons.len() {
                            let latency = self.cfg.topology.machine_latency(machine, td)
                                + size_cost
                                + self.cfg.per_message_processing;
                            self.schedule(
                                latency,
                                Ev::FifoArrive {
                                    daemon: td,
                                    delivery: delivery.clone(),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_fifo_arrive(&mut self, daemon: DaemonId, delivery: Delivery) {
        let machine = self.daemons[daemon].machine;
        let targets: Vec<ClientId> = match delivery.dest {
            Dest::One(t) => vec![t],
            Dest::All => self
                .view_history
                .get(&delivery.view_id)
                .map(|v| v.members.clone())
                .unwrap_or_default(),
        };
        for c in targets {
            if c < self.clients.len() && self.clients[c].machine == machine && self.clients[c].alive
            {
                self.schedule(
                    self.cfg.client_daemon_delay,
                    Ev::ClientDeliver {
                        client: c,
                        delivery: delivery.clone(),
                    },
                );
            }
        }
    }

    fn install_view_at_daemon(&mut self, daemon: DaemonId, view: &Rc<View>) {
        self.daemons[daemon].installed_view = view.id;
        let at = self.queue.now();
        let view_id = view.id;
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Daemon(daemon),
            kind: EventKind::ViewInstalled { view_id },
        });
        // Per-member installation processing at the daemon.
        let install_cost = self.cfg.membership_per_member * view.members.len() as u64;
        let machine = self.daemons[daemon].machine;
        // Members on this machine receive the view.
        let locals: Vec<ClientId> = view
            .members
            .iter()
            .copied()
            .filter(|&c| self.clients[c].machine == machine)
            .collect();
        for c in locals {
            self.clients[c].alive = true;
            self.schedule(
                install_cost + self.cfg.client_daemon_delay,
                Ev::ViewDeliver {
                    client: c,
                    view: Rc::clone(view),
                },
            );
        }
        // Members that left and live on this machine go silent.
        for &l in &view.left {
            if self.clients[l].machine == machine {
                self.clients[l].alive = false;
            }
        }
        self.check_membership_complete(view.group);
    }

    /// Cluster-wide membership completion for one group: the new view
    /// is adopted once every *alive* daemon has installed it (a
    /// crashed daemon never will, and the reformed ring does not wait
    /// on it).
    fn check_membership_complete(&mut self, group: GroupId) {
        let done = self
            .active
            .get(&group)
            .map(|a| {
                a.installed
                    .iter()
                    .zip(&self.daemons)
                    .all(|(&installed, d)| installed || !d.alive)
            })
            .unwrap_or(false);
        if done {
            let Some(active) = self.active.remove(&group) else {
                return;
            };
            self.adopt_view(&active.new_view);
            self.maybe_start_membership(group);
        }
    }

    fn grow_vclock(&mut self, client: ClientId) {
        let n = self.clients.len();
        if self.clients[client].vclock.len() < n {
            self.clients[client].vclock.resize(n, 0);
        }
    }

    /// True if `msg` is the next causal message from its sender and
    /// every message it causally depends on has been delivered here.
    fn causally_deliverable(&self, client: ClientId, msg: &CausalMsg) -> bool {
        let vc = &self.clients[client].vclock;
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        for k in 0..msg.vc.len() {
            if k == msg.sender {
                continue;
            }
            if get(vc, k) < msg.vc[k] {
                return false; // a causal predecessor is still missing
            }
        }
        // Exactly the next message from this sender.
        get(vc, msg.sender) + 1 == msg.vc[msg.sender]
    }

    fn on_causal_arrive(&mut self, client: ClientId, msg: CausalMsg) {
        if !self.clients[client].alive {
            return;
        }
        self.grow_vclock(client);
        self.clients[client].causal_buffer.push(msg);
        // Deliver everything that has become deliverable, repeatedly
        // (one delivery can unblock others).
        loop {
            let idx = {
                let slot = &self.clients[client];
                slot.causal_buffer
                    .iter()
                    .position(|m| self.causally_deliverable(client, m))
            };
            let Some(i) = idx else { break };
            let msg = self.clients[client].causal_buffer.remove(i);
            // Merge the clock.
            self.grow_vclock(client);
            let slot = &mut self.clients[client];
            if slot.vclock.len() < msg.vc.len() {
                slot.vclock.resize(msg.vc.len(), 0);
            }
            for k in 0..msg.vc.len() {
                slot.vclock[k] = slot.vclock[k].max(msg.vc[k]);
            }
            let delivery = Delivery {
                sender: msg.sender,
                service: Service::Causal,
                dest: Dest::All,
                view_id: msg.view_id,
                payload: msg.payload,
            };
            self.deliver_to_client(client, delivery);
        }
    }

    fn deliver_view_to_client(&mut self, client: ClientId, view: &Rc<View>) {
        if !self.clients[client].alive {
            return;
        }
        let Some(mut handler) = self.clients[client].handler.take() else {
            return;
        };
        let start = self.queue.now().max(self.clients[client].busy_until);
        let speed = self
            .cfg
            .topology
            .machine(self.clients[client].machine)
            .speed;
        let mut ctx = ClientCtx::new(client, start, view.id, speed);
        handler.on_view(&mut ctx, view);
        self.finish_handler(client, handler, start, ctx);
    }

    fn deliver_to_client(&mut self, client: ClientId, delivery: Delivery) {
        if !self.clients[client].alive {
            return;
        }
        let at = self.queue.now();
        let sender = delivery.sender;
        let service = delivery.service.as_str();
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor: Actor::Client(client),
            kind: EventKind::Delivered { sender, service },
        });
        let Some(mut handler) = self.clients[client].handler.take() else {
            return;
        };
        let start = self.queue.now().max(self.clients[client].busy_until);
        let speed = self
            .cfg
            .topology
            .machine(self.clients[client].machine)
            .speed;
        let mut ctx = ClientCtx::new(client, start, delivery.view_id, speed);
        handler.on_message(&mut ctx, &delivery);
        self.finish_handler(client, handler, start, ctx);
    }

    /// Applies a handler's CPU charge, reports the true completion
    /// instant back to the client, and schedules its sends.
    fn finish_handler(
        &mut self,
        client: ClientId,
        mut handler: Box<dyn Client>,
        start: SimTime,
        ctx: ClientCtx<'_>,
    ) {
        let machine = self.clients[client].machine;
        let run = self.machines[machine].run_detailed(start, ctx.charged);
        let end = run.end;
        if ctx.charged > Duration::ZERO {
            self.telemetry.record(|| Event {
                at: run.begin,
                dur: run.end.since(run.begin),
                actor: Actor::Client(client),
                kind: EventKind::HandlerSpan {
                    wait: run.begin.since(start),
                },
            });
        }
        self.clients[client].busy_until = end;
        handler.on_cpu_complete(end);
        self.clients[client].handler = Some(handler);
        let submit_delay = end.since(self.queue.now()) + self.cfg.client_daemon_delay;
        for out in ctx.outgoing {
            self.schedule(submit_delay, Ev::ClientSubmit { client, out });
        }
    }
}

/// Serializes a sequenced message into a FEC record. The layout is
/// fixed little-endian so encoding is a pure, deterministic function
/// of the message: seq (8) | sender (8) | view_id (8) | origin (8) |
/// dest tag (1) | dest target (8) | payload_len (8) | payload.
/// Trailing zero-padding (from the erasure code's common shard
/// length) is ignored by [`decode_record`] via the embedded
/// `payload_len`.
fn encode_record(msg: &WireMsg) -> Vec<u8> {
    let mut rec = Vec::with_capacity(49 + msg.payload.len());
    rec.extend_from_slice(&msg.seq.to_le_bytes());
    rec.extend_from_slice(&(msg.sender as u64).to_le_bytes());
    rec.extend_from_slice(&msg.view_id.to_le_bytes());
    rec.extend_from_slice(&(msg.origin as u64).to_le_bytes());
    let (tag, target) = msg.dest.to_wire();
    rec.push(tag);
    rec.extend_from_slice(&target.to_le_bytes());
    rec.extend_from_slice(&(msg.payload.len() as u64).to_le_bytes());
    rec.extend_from_slice(&msg.payload);
    rec
}

/// Reverses [`encode_record`]. `None` on any malformed or truncated
/// record (an interpolation fed bad shards) — the caller falls back
/// to retransmission rather than panicking.
fn decode_record(rec: &[u8]) -> Option<WireMsg> {
    let u64_at = |off: usize| -> Option<u64> {
        rec.get(off..off + 8)?
            .try_into()
            .ok()
            .map(u64::from_le_bytes)
    };
    let seq = u64_at(0)?;
    let sender = u64_at(8)? as ClientId;
    let view_id = u64_at(16)?;
    let origin = u64_at(24)? as DaemonId;
    let tag = *rec.get(32)?;
    let target = u64_at(33)?;
    let dest = Dest::from_wire(tag, target)?;
    let payload_len = u64_at(41)? as usize;
    let payload = rec.get(49..49 + payload_len)?;
    Some(WireMsg {
        seq,
        sender,
        dest,
        view_id,
        payload: Bytes::copy_from_slice(payload),
        origin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;

    #[test]
    fn record_codec_roundtrip() {
        for dest in [Dest::All, Dest::One(5)] {
            let msg = WireMsg {
                seq: 42,
                sender: 3,
                dest,
                view_id: 7,
                payload: Bytes::from(vec![9u8, 8, 7, 6, 5]),
                origin: 11,
            };
            let mut rec = encode_record(&msg);
            // Erasure-coded records carry trailing zero-padding up to
            // the generation's common shard length; the codec must see
            // through it.
            rec.resize(rec.len() + 13, 0);
            let back = decode_record(&rec).expect("roundtrip");
            assert_eq!(back.seq, msg.seq);
            assert_eq!(back.sender, msg.sender);
            assert_eq!(back.dest, msg.dest);
            assert_eq!(back.view_id, msg.view_id);
            assert_eq!(back.payload, msg.payload);
            assert_eq!(back.origin, msg.origin);
        }
        assert!(decode_record(&[1, 2, 3]).is_none(), "truncated record");
    }

    #[test]
    fn burst_window_is_half_open_and_clears_on_expiry() {
        let mut cfg = testbed::lan();
        cfg.loss_rate = 0.0;
        let mut w = SimWorld::new(cfg);
        w.set_loss_burst(0.5, Duration::from_millis(10));
        let until = SimTime::ZERO + Duration::from_millis(10);
        // One nanosecond before expiry the burst rate applies...
        let just_before = SimTime::from_nanos(until.as_nanos() - 1);
        assert_eq!(w.effective_loss_rate_at(just_before), 0.5);
        assert!(w.loss_burst.is_some(), "burst still active");
        // ...at the exact expiry instant it no longer does (half-open
        // window), and the expired burst is cleared.
        assert_eq!(w.effective_loss_rate_at(until), 0.0);
        assert!(w.loss_burst.is_none(), "expired burst must be cleared");
        // Cleared state is stable: later draws stay on the base rate.
        assert_eq!(
            w.effective_loss_rate_at(until + Duration::from_millis(1)),
            0.0
        );
    }

    #[test]
    fn burst_combines_with_base_rate_via_max() {
        let mut cfg = testbed::lan();
        cfg.loss_rate = 0.3;
        let mut w = SimWorld::new(cfg);
        // A 0.0-rate burst cannot suppress the configured base rate.
        w.set_loss_burst(0.0, Duration::from_millis(5));
        assert_eq!(w.effective_loss_rate_at(SimTime::ZERO), 0.3);
        // A burst above the base rate overrides it while it lasts.
        w.set_loss_burst(0.9, Duration::from_millis(5));
        assert_eq!(w.effective_loss_rate_at(SimTime::ZERO), 0.9);
        assert_eq!(
            w.effective_loss_rate_at(SimTime::ZERO + Duration::from_millis(5)),
            0.3
        );
    }

    #[test]
    fn overlapping_bursts_last_writer_wins() {
        let mut w = SimWorld::new(testbed::lan());
        w.set_loss_burst(0.8, Duration::from_millis(100));
        // A shorter, milder burst set while the first is active
        // replaces it entirely — including cutting the window short.
        w.set_loss_burst(0.2, Duration::from_millis(1));
        assert_eq!(w.effective_loss_rate_at(SimTime::ZERO), 0.2);
        assert_eq!(
            w.effective_loss_rate_at(SimTime::ZERO + Duration::from_millis(2)),
            0.0,
            "the replaced burst's longer window must not survive"
        );
    }

    #[test]
    fn edge_burst_rates_are_accepted() {
        let mut w = SimWorld::new(testbed::lan());
        w.set_loss_burst(0.0, Duration::from_millis(1));
        assert_eq!(w.effective_loss_rate_at(SimTime::ZERO), 0.0);
        w.set_loss_burst(1.0, Duration::from_millis(1));
        assert_eq!(w.effective_loss_rate_at(SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "burst loss rate")]
    fn out_of_range_burst_rate_rejected() {
        let mut w = SimWorld::new(testbed::lan());
        w.set_loss_burst(1.5, Duration::from_millis(1));
    }

    #[test]
    fn parity_budget_respects_floor_ceiling_and_field() {
        let mut cfg = testbed::lan();
        cfg.fec_parity = 2;
        cfg.fec_parity_max = 6;
        cfg.fec_adaptive = true;
        let mut w = SimWorld::new(cfg);
        // No losses observed yet: the floor applies.
        assert_eq!(w.parity_budget(10), 2);
        // A high loss estimate pushes the budget up to the ceiling.
        w.loss_ewma = 0.9;
        assert_eq!(w.parity_budget(10), 6);
        // A moderate estimate lands between floor and ceiling:
        // ceil(0.2 * 2 * 10) = 4.
        w.loss_ewma = 0.2;
        assert_eq!(w.parity_budget(10), 4);
        // The field size always caps the total shard count.
        assert_eq!(w.parity_budget(255), 1);
    }
}

//! Scheduled fault injection: the configuration half of the chaos
//! engine.
//!
//! A [`FaultPlan`] is a list of faults keyed by virtual time offsets.
//! Handing one to [`crate::SimWorld::apply_fault_plan`] schedules every
//! fault as a simulation event, so a plan composes with ordinary
//! membership injections and stays fully deterministic: the same plan
//! against the same world produces the same run.
//!
//! Four fault shapes cover the failure modes of the paper's Spread
//! deployment (§4, §7):
//!
//! * [`Fault::Crash`] — a daemon process dies mid-token-rotation. Its
//!   clients die with it; after the configured detection timeout the
//!   surviving daemons reform the ring, regenerate the token, and evict
//!   the dead machine's members via a view change.
//! * [`Fault::LossBurst`] — the link loss probability is temporarily
//!   overridden (up to 1.0, a full blackout); token-driven
//!   retransmission recovers the gaps afterwards.
//! * [`Fault::Partition`] / [`Fault::Heal`] — a set of members drops
//!   out of the view together and later rejoins (the cascaded
//!   partition/merge pairs of §7).

use gkap_sim::Duration;

use crate::{ClientId, DaemonId};

/// One injectable fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// A daemon crashes (see [`crate::SimWorld::inject_crash`]).
    Crash {
        /// The daemon that dies.
        daemon: DaemonId,
    },
    /// The daemon-to-daemon copy loss probability becomes `rate` for
    /// `duration` of virtual time, then reverts to the configured
    /// `loss_rate`.
    LossBurst {
        /// Loss probability during the burst (`0.0..=1.0`).
        rate: f64,
        /// How long the burst lasts.
        duration: Duration,
    },
    /// `members` drop out of the view together (a network partition
    /// seen from the primary component). Members not currently in the
    /// view are skipped.
    Partition {
        /// The members cut off.
        members: Vec<ClientId>,
    },
    /// Previously partitioned `members` rejoin the view. Members whose
    /// machine's daemon has crashed, or who are already in the view,
    /// are skipped.
    Heal {
        /// The members coming back.
        members: Vec<ClientId>,
    },
}

/// A fault scheduled at a virtual-time offset from plan application.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedFault {
    /// Virtual time between [`crate::SimWorld::apply_fault_plan`] and
    /// the fault firing.
    pub after: Duration,
    /// What happens.
    pub fault: Fault,
}

/// A deterministic schedule of faults, keyed by virtual time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults (firing order is by `after`; ties resolve
    /// in push order via the event queue's stable ordering).
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault at the given offset (builder style).
    pub fn push(mut self, after: Duration, fault: Fault) -> Self {
        self.faults.push(PlannedFault { after, fault });
        self
    }

    /// Schedules a daemon crash.
    pub fn crash(self, after: Duration, daemon: DaemonId) -> Self {
        self.push(after, Fault::Crash { daemon })
    }

    /// Schedules a loss burst.
    pub fn loss_burst(self, after: Duration, rate: f64, duration: Duration) -> Self {
        self.push(after, Fault::LossBurst { rate, duration })
    }

    /// Schedules a partition.
    pub fn partition(self, after: Duration, members: Vec<ClientId>) -> Self {
        self.push(after, Fault::Partition { members })
    }

    /// Schedules a heal.
    pub fn heal(self, after: Duration, members: Vec<ClientId>) -> Self {
        self.push(after, Fault::Heal { members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .crash(Duration::from_millis(1), 3)
            .loss_burst(Duration::from_millis(2), 0.5, Duration::from_millis(4))
            .partition(Duration::from_millis(3), vec![1, 2])
            .heal(Duration::from_millis(9), vec![1, 2]);
        assert_eq!(plan.faults.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.faults[0].fault, Fault::Crash { daemon: 3 });
        assert_eq!(plan.faults[3].after, Duration::from_millis(9));
        assert!(FaultPlan::new().is_empty());
    }
}

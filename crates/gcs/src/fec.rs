//! Systematic erasure coding for the rekey fan-out: `k` data shards
//! plus `r` parity shards, any `k` of which reconstruct the data.
//!
//! The code is a systematic Reed–Solomon code over GF(256)
//! (XOR/Vandermonde-style, as in "Error Detection and Correction for
//! Distributed Group Key Agreement Protocol"): the `k` data shards are
//! read as the values of a degree-`< k` polynomial at the evaluation
//! points `0..k`, and each parity shard `j` is the same polynomial
//! evaluated at point `k + j`. Any `k` distinct evaluations determine
//! the polynomial, so any `k` of the `k + r` shards recover every data
//! shard — the receiver Lagrange-interpolates the missing points. For
//! `r = 1` and `k = 1` this degenerates to plain replication, and a
//! single parity shard generally plays the role of the classic XOR
//! parity: one lost data shard is always repairable.
//!
//! Everything here is a pure function of its inputs — no randomness,
//! no clocks, no allocation beyond the output shards — so encoding and
//! decoding are deterministic and safe to use inside the discrete-event
//! engine. All fallible paths return `Option` rather than panicking.
//!
//! Shards within one generation must share a common length; the engine
//! zero-pads data records to the generation's maximum record length
//! and embeds each record's true length in its header, so padding is
//! recoverable after decode.

/// GF(256) modulus: the AES/Rijndael-adjacent polynomial
/// `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the standard Reed–Solomon
/// field generator with primitive element 2.
const GF_POLY: u16 = 0x11d;

/// Builds the exp/log tables for GF(256) at compile time. `exp` is
/// doubled to 512 entries so `exp[log a + log b]` never wraps.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF_POLY;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const GF_EXP: [u8; 512] = TABLES.0;
const GF_LOG: [u8; 256] = TABLES.1;

/// GF(256) multiplication via the log/exp tables.
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
    }
}

/// GF(256) multiplicative inverse; `None` for zero.
fn gf_inv(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(GF_EXP[255 - GF_LOG[a as usize] as usize])
    }
}

/// The Lagrange basis coefficient `L_i(t)` over the evaluation points
/// `pts` (addition/subtraction in GF(2^8) are both XOR). `None` only
/// if `pts` contains duplicates (a caller bug the code degrades on
/// rather than panicking).
fn lagrange_coeff(pts: &[u8], i: usize, t: u8) -> Option<u8> {
    let xi = *pts.get(i)?;
    let mut num = 1u8;
    let mut den = 1u8;
    for (j, &xj) in pts.iter().enumerate() {
        if j == i {
            continue;
        }
        num = gf_mul(num, t ^ xj);
        den = gf_mul(den, xi ^ xj);
    }
    Some(gf_mul(num, gf_inv(den)?))
}

/// Maximum total shard count (`k + r`): one evaluation point per shard
/// in GF(256).
pub const MAX_SHARDS: usize = 256;

/// Encodes `r` parity shards over `data`. Data shards may have
/// different lengths; each parity shard has the maximum data-shard
/// length (shorter shards are treated as zero-padded, so the decoder
/// must be told — or carry — each record's true length).
///
/// Returns `None` when `data` is empty or `data.len() + r` exceeds
/// [`MAX_SHARDS`]; `Some(vec![])` when `r` is zero.
pub fn encode(data: &[Vec<u8>], r: usize) -> Option<Vec<Vec<u8>>> {
    let k = data.len();
    if k == 0 || k + r > MAX_SHARDS {
        return None;
    }
    if r == 0 {
        return Some(Vec::new());
    }
    let len = data.iter().map(Vec::len).max().unwrap_or(0);
    let pts: Vec<u8> = (0..k as u16).map(|p| p as u8).collect();
    let mut parity = Vec::with_capacity(r);
    for j in 0..r {
        let t = (k + j) as u8;
        let mut shard = vec![0u8; len];
        for (i, d) in data.iter().enumerate() {
            let c = lagrange_coeff(&pts, i, t)?;
            if c == 0 {
                continue;
            }
            for (b, &v) in d.iter().enumerate() {
                shard[b] ^= gf_mul(c, v);
            }
        }
        parity.push(shard);
    }
    Some(parity)
}

/// Reconstructs all `k` data shards from any `k` shards of the
/// generation. `have` pairs each shard with its global index — `0..k`
/// for data shards, `k..` for parity shards as produced by
/// [`encode`]. Extra shards beyond `k` are ignored (the first `k` in
/// ascending index order are used); shorter shards are treated as
/// zero-padded to the longest provided shard.
///
/// Returns `None` when fewer than `k` distinct shard indices are
/// provided, an index is out of range, or `k` is zero/too large.
pub fn decode(k: usize, have: &[(usize, &[u8])]) -> Option<Vec<Vec<u8>>> {
    if k == 0 || k > MAX_SHARDS {
        return None;
    }
    let mut used: Vec<(usize, &[u8])> = have.to_vec();
    used.sort_by_key(|(i, _)| *i);
    used.dedup_by_key(|(i, _)| *i);
    if used.len() < k || used.iter().any(|&(i, _)| i >= MAX_SHARDS) {
        return None;
    }
    used.truncate(k);
    let len = used.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let pts: Vec<u8> = used.iter().map(|&(i, _)| i as u8).collect();
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(k);
    for m in 0..k {
        // Fast path: the data shard itself is among the provided set.
        if let Some(&(_, s)) = used.iter().find(|&&(i, _)| i == m) {
            let mut shard = s.to_vec();
            shard.resize(len, 0);
            out.push(shard);
            continue;
        }
        let mut shard = vec![0u8; len];
        for (s, &(_, body)) in used.iter().enumerate() {
            let c = lagrange_coeff(&pts, s, m as u8)?;
            if c == 0 {
                continue;
            }
            for (b, &v) in body.iter().enumerate() {
                shard[b] ^= gf_mul(c, v);
            }
        }
        out.push(shard);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| (i * 37 + b * 11 + 3) as u8).collect())
            .collect()
    }

    #[test]
    fn field_tables_are_consistent() {
        // exp/log are inverse bijections on the nonzero elements.
        for a in 1u16..=255 {
            let a = a as u8;
            assert_eq!(GF_EXP[GF_LOG[a as usize] as usize], a);
            let inv = gf_inv(a).unwrap();
            assert_eq!(gf_mul(a, inv), 1, "a * a^-1 must be 1 for a={a}");
        }
        assert_eq!(gf_mul(0, 7), 0);
        assert!(gf_inv(0).is_none());
    }

    #[test]
    fn decode_from_data_only_is_identity() {
        let data = gen(4, 16);
        let have: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(decode(4, &have).unwrap(), data);
    }

    #[test]
    fn any_k_of_k_plus_r_recover() {
        let k = 5;
        let r = 3;
        let data = gen(k, 24);
        let parity = encode(&data, r).unwrap();
        assert_eq!(parity.len(), r);
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        // Every way of dropping r shards still recovers the data.
        for a in 0..k + r {
            for b in (a + 1)..k + r {
                for c in (b + 1)..k + r {
                    let have: Vec<(usize, &[u8])> = all
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != a && *i != b && *i != c)
                        .map(|(i, s)| (i, s.as_slice()))
                        .collect();
                    let got = decode(k, &have).unwrap();
                    assert_eq!(got, data, "dropping shards {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn single_parity_repairs_single_loss() {
        // The r = 1 case: one parity shard repairs any one lost data
        // shard (the XOR-parity role).
        let k = 7;
        let data = gen(k, 9);
        let parity = encode(&data, 1).unwrap();
        for lost in 0..k {
            let mut have: Vec<(usize, &[u8])> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, s)| (i, s.as_slice()))
                .collect();
            have.push((k, parity[0].as_slice()));
            assert_eq!(decode(k, &have).unwrap(), data, "lost shard {lost}");
        }
    }

    #[test]
    fn unequal_record_lengths_zero_pad() {
        let data = vec![vec![1, 2, 3], vec![9], vec![4, 5, 6, 7, 8]];
        let parity = encode(&data, 2).unwrap();
        assert!(parity.iter().all(|p| p.len() == 5));
        // Lose the two shorter records; recover them zero-padded.
        let have: Vec<(usize, &[u8])> = vec![
            (2, data[2].as_slice()),
            (3, parity[0].as_slice()),
            (4, parity[1].as_slice()),
        ];
        let got = decode(3, &have).unwrap();
        assert_eq!(got[0], vec![1, 2, 3, 0, 0]);
        assert_eq!(got[1], vec![9, 0, 0, 0, 0]);
        assert_eq!(got[2], data[2]);
    }

    #[test]
    fn encoding_is_deterministic() {
        let data = gen(6, 32);
        assert_eq!(encode(&data, 4), encode(&data, 4));
    }

    #[test]
    fn degenerate_inputs_degrade_gracefully() {
        assert!(encode(&[], 2).is_none(), "empty generation");
        assert_eq!(encode(&gen(3, 4), 0), Some(Vec::new()), "r = 0 is a no-op");
        assert!(
            encode(&gen(200, 1), 60).is_none(),
            "k + r over the field size"
        );
        assert!(decode(0, &[]).is_none());
        let d = gen(3, 4);
        let too_few: Vec<(usize, &[u8])> = d
            .iter()
            .take(2)
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect();
        assert!(decode(3, &too_few).is_none(), "k-1 shards cannot decode");
        // Duplicate indices do not count twice.
        let dup: Vec<(usize, &[u8])> = vec![
            (0, d[0].as_slice()),
            (0, d[0].as_slice()),
            (1, d[1].as_slice()),
        ];
        assert!(decode(3, &dup).is_none());
    }

    #[test]
    fn extra_shards_are_ignored() {
        let data = gen(4, 8);
        let parity = encode(&data, 3).unwrap();
        let mut have: Vec<(usize, &[u8])> = Vec::new();
        // All 7 shards provided; only 4 are needed.
        for (i, s) in data.iter().enumerate() {
            have.push((i, s.as_slice()));
        }
        for (j, p) in parity.iter().enumerate() {
            have.push((4 + j, p.as_slice()));
        }
        assert_eq!(decode(4, &have).unwrap(), data);
    }
}

//! A simulated Spread-like group communication system.
//!
//! The paper integrates its key agreement protocols with the Spread
//! toolkit: a daemon/client architecture in which daemons — one per
//! machine — run a token-based total-ordering protocol (in the style of
//! Totem/Ring), and client processes connect to their local daemon. The
//! experiments could not be reproduced on the original 13-machine
//! LAN + three-continent WAN testbed, so this crate rebuilds the
//! *mechanisms* that the paper identifies as performance-decisive, in a
//! deterministic discrete-event simulation:
//!
//! * **Token-ring Agreed (total-order) multicast** with an
//!   all-received-up-to (aru) stability rule: a message becomes
//!   deliverable at a daemon only once the token has carried proof that
//!   every daemon holds every earlier message. This single mechanism
//!   yields both the paper's ≈1.3 ms LAN Agreed-multicast cost and its
//!   ≈305–335 ms WAN cost (depending on sender site), and the paper's
//!   footnote-10 observation that a missed token costs a full rotation.
//! * **Flow control**: a daemon may send at most a configured number of
//!   messages per token visit, which is what makes the all-to-all
//!   broadcast rounds of BD degrade super-linearly at large group sizes.
//! * **View-synchronous membership**: join/leave/partition/merge events
//!   trigger a membership round lasting a configurable number of token
//!   rotations, after which each daemon installs the new view as the
//!   token passes — membership is nearly free on a LAN and costs
//!   hundreds of milliseconds on the WAN, exactly as §6.1.1/§6.2.1
//!   report.
//! * **Unicast service**: point-to-point FIFO messages bypass the token
//!   (CKD's pairwise channels), while *Agreed-ordered* "unicasts"
//!   (GDH's factor-out tokens) pay full broadcast cost — the effect the
//!   paper highlights in §6.2.2.
//! * **CPU contention**: clients are distributed over machines with a
//!   fixed core count ([`gkap_sim::CpuScheduler`]); multiple members
//!   per dual-processor machine serialize, reproducing BD's cost
//!   doubling at group sizes crossing multiples of 13.
//!
//! The [`testbed`] module provides the paper's two configurations: the
//! 13-machine LAN cluster and the JHU/UCI/ICU WAN (Figure 13).
//!
//! # Example
//!
//! ```
//! use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};
//! use gkap_sim::Duration;
//!
//! /// A client that multicasts one "hello" when a view arrives.
//! struct Hello { got: usize }
//! impl Client for Hello {
//!     fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
//!         ctx.multicast_agreed(vec![1, 2, 3]);
//!     }
//!     fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut world = SimWorld::new(testbed::lan());
//! for _ in 0..3 {
//!     world.add_client(Box::new(Hello { got: 0 }));
//! }
//! world.install_initial_view();
//! world.run_until_quiescent();
//! // Every member received every member's hello (including its own).
//! for i in 0..3 {
//!     assert_eq!(world.client::<Hello>(i).got, 3);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod engine;
mod fault;
pub mod fec;
mod message;
mod shard;
pub mod testbed;
mod topology;

pub use client::{Client, ClientCtx};
pub use config::GcsConfig;
pub use engine::{SimWorld, TraceEvent, WorldStats};
pub use fault::{Fault, FaultPlan, PlannedFault};
pub use message::{Delivery, Dest, Service, View, ViewId};
pub use shard::{ShardMap, ShardedWorld};
pub use topology::{MachineCfg, SiteCfg, Topology};

/// Client (group member process) identifier: index into the world's
/// client table. Stable for the lifetime of a simulation.
pub type ClientId = usize;

/// Daemon identifier (one daemon per machine).
pub type DaemonId = usize;

/// Group identifier: one daemon ring can carry many independent
/// lightweight groups (per-group view state over a shared token and
/// link model). Single-group worlds use group `0` throughout.
pub type GroupId = usize;

/// Machine identifier.
pub type MachineId = usize;

/// Site (network location) identifier.
pub type SiteId = usize;

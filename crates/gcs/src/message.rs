//! Message and view types delivered to clients.

use bytes::Bytes;

use crate::{ClientId, GroupId};

/// Delivery service class, mirroring Spread's service levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Service {
    /// Totally-ordered (Agreed) delivery through the token ring. All
    /// members deliver all Agreed messages in the same order. Expensive
    /// on a WAN (token wait + stability rotation).
    Agreed,
    /// FIFO point-to-point or multicast delivery that bypasses the
    /// token: cheap, but unordered relative to Agreed traffic. Used for
    /// CKD's pairwise channel messages.
    Fifo,
    /// Causally-ordered multicast (vector clocks): delivery respects
    /// happens-before across senders, without paying for total order.
    Causal,
}

impl Service {
    /// Stable lowercase label (used as the telemetry `service` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Service::Agreed => "agreed",
            Service::Fifo => "fifo",
            Service::Causal => "causal",
        }
    }

    /// Inverse of [`Service::as_str`].
    pub fn from_str_label(s: &str) -> Option<Service> {
        match s {
            "agreed" => Some(Service::Agreed),
            "fifo" => Some(Service::Fifo),
            "causal" => Some(Service::Causal),
            _ => None,
        }
    }
}

/// Message destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Every member of the current view (a multicast).
    All,
    /// A single member. Note that an Agreed unicast still traverses the
    /// token ring and costs as much as a broadcast (§6.2.2 of the
    /// paper) — only the final delivery is filtered.
    One(ClientId),
}

impl Dest {
    /// Stable wire encoding as a `(tag, target)` pair for the FEC
    /// record codec: `All` ↔ `(0, 0)`, `One(c)` ↔ `(1, c)`.
    pub(crate) fn to_wire(self) -> (u8, u64) {
        match self {
            Dest::All => (0, 0),
            Dest::One(c) => (1, c as u64),
        }
    }

    /// Inverse of [`Dest::to_wire`]; `None` for an unknown tag (a
    /// corrupt record must fail decode, not panic).
    pub(crate) fn from_wire(tag: u8, target: u64) -> Option<Dest> {
        match tag {
            0 => Some(Dest::All),
            1 => Some(Dest::One(target as usize)),
            _ => None,
        }
    }
}

/// A view identifier; increases with every membership change.
pub type ViewId = u64;

/// A membership view, as installed by the view-synchronous membership
/// service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotonically increasing view number. View ids are unique
    /// across the whole world (all groups share one counter), so a
    /// view id alone identifies an epoch.
    pub id: ViewId,
    /// The group this view belongs to. Worlds that never ask for more
    /// than one group see only group `0`.
    pub group: GroupId,
    /// Current members, in daemon/ring order (the order Spread reports;
    /// the protocols use it to pick controllers and sponsors).
    pub members: Vec<ClientId>,
    /// Members that joined relative to the previous view.
    pub joined: Vec<ClientId>,
    /// Members that left relative to the previous view.
    pub left: Vec<ClientId>,
}

impl View {
    /// Number of members in the view.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether `c` is a member of this view.
    pub fn contains(&self, c: ClientId) -> bool {
        self.members.contains(&c)
    }

    /// The position of `c` in the view order, if present.
    pub fn position(&self, c: ClientId) -> Option<usize> {
        self.members.iter().position(|&m| m == c)
    }
}

/// A message as delivered to a client.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The sending member.
    pub sender: ClientId,
    /// Service class the message was sent with.
    pub service: Service,
    /// Destination as specified by the sender.
    pub dest: Dest,
    /// View in which the message was sent (epoch tag; protocols discard
    /// messages from superseded views).
    pub view_id: ViewId,
    /// Application payload.
    pub payload: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_wire_roundtrip() {
        for d in [Dest::All, Dest::One(0), Dest::One(42)] {
            let (tag, target) = d.to_wire();
            assert_eq!(Dest::from_wire(tag, target), Some(d));
        }
        assert_eq!(Dest::from_wire(2, 0), None, "unknown tag fails decode");
    }

    #[test]
    fn view_membership_queries() {
        let v = View {
            id: 3,
            group: 0,
            members: vec![10, 20, 30],
            joined: vec![30],
            left: vec![],
        };
        assert_eq!(v.size(), 3);
        assert!(v.contains(20));
        assert!(!v.contains(40));
        assert_eq!(v.position(30), Some(2));
        assert_eq!(v.position(99), None);
    }
}

//! Sharded execution: groups partitioned across independent token
//! rings.
//!
//! The single-ring engine couples every group through one shared
//! sequencer: the flush condition that gates a view install waits on
//! *all* in-flight messages, so a membership cascade in one group
//! delays installs in every other group on the ring. A [`ShardMap`]
//! breaks that coupling by partitioning `GroupId`s across `S`
//! independent rings — each a full [`SimWorld`] replica of the
//! testbed with its own token sequencer, `pending_changes`, and flush
//! condition. Groups on different shards interact with nothing, so a
//! cascade in shard 0 cannot move a single event in shard 1.
//!
//! [`ShardedWorld`] keeps the single-ring API: clients get *global*
//! ids, views are reported with global member ids, and `S = 1`
//! degenerates to exactly one [`SimWorld`] carrying every group — the
//! existing engine is the one-shard case.
//!
//! Each shard advances its own virtual clock. [`ShardedWorld::now`]
//! reports the conservative frontier (the maximum over shards): every
//! shard has simulated *at least* to its own local time, and no
//! cross-shard event exists that could invalidate another shard's
//! past — the classic conservative-parallel-simulation argument,
//! degenerate here because the interaction graph across shards is
//! empty.

use gkap_sim::{SimTime, VtFrontier};

use crate::client::Client;
use crate::config::GcsConfig;
use crate::engine::{SimWorld, WorldStats};
use crate::message::View;
use crate::{ClientId, GroupId};

/// A deterministic partition of group ids over `S` shards.
///
/// Round-robin by group id: `shard_of(g) = g % shards`. The map is a
/// pure function of `(g, shards)`, so a workload's group→shard
/// assignment never depends on scheduling or iteration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// Creates a map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a group lives on.
    pub fn shard_of(&self, group: GroupId) -> usize {
        group % self.shards
    }

    /// The groups (of `total` consecutive ids starting at 0) assigned
    /// to `shard`, in ascending order.
    pub fn groups_of(&self, shard: usize, total: usize) -> Vec<GroupId> {
        (0..total).filter(|g| self.shard_of(*g) == shard).collect()
    }
}

/// Where a global client lives: its shard and its id inside that
/// shard's world.
#[derive(Clone, Copy, Debug)]
struct ClientHome {
    shard: usize,
    local: ClientId,
}

/// `S` independent token rings behind the single-ring API.
///
/// Every ring is a complete replica of the configured topology (the
/// paper's 13-machine LAN, say); groups are pinned to rings by the
/// [`ShardMap`] and never share a sequencer, CPU scheduler, or flush
/// condition across rings.
pub struct ShardedWorld {
    map: ShardMap,
    worlds: Vec<SimWorld>,
    /// Global client id → home shard and local id.
    clients: Vec<ClientHome>,
    /// Per shard: local client id → global id (inverse of `clients`).
    locals: Vec<Vec<ClientId>>,
}

impl std::fmt::Debug for ShardedWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("shards", &self.map.shards())
            .field("clients", &self.clients.len())
            .field("now", &self.now())
            .finish()
    }
}

impl ShardedWorld {
    /// Creates `shards` independent ring replicas of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the configuration is invalid.
    pub fn new(cfg: GcsConfig, shards: usize) -> Self {
        let map = ShardMap::new(shards);
        let worlds = (0..shards).map(|_| SimWorld::new(cfg.clone())).collect();
        ShardedWorld {
            map,
            worlds,
            clients: Vec::new(),
            locals: vec![Vec::new(); shards],
        }
    }

    /// The shard map in use.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Borrows one shard's world (read-only introspection).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &SimWorld {
        &self.worlds[shard]
    }

    /// Adds a client that will belong to `group`, on that group's
    /// shard, assigned to a machine round-robin *within the shard*.
    /// Returns the client's global id.
    pub fn add_client_in(&mut self, group: GroupId, handler: Box<dyn Client>) -> ClientId {
        let shard = self.map.shard_of(group);
        let machine = self.clients.len() % self.worlds[shard].config().topology.machine_count();
        self.add_client_on_in(group, handler, machine)
    }

    /// Adds a client for `group` on a specific machine of the group's
    /// shard ring. Returns the client's global id.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn add_client_on_in(
        &mut self,
        group: GroupId,
        handler: Box<dyn Client>,
        machine: usize,
    ) -> ClientId {
        let shard = self.map.shard_of(group);
        let local = self.worlds[shard].add_client_on(handler, machine);
        let global = self.clients.len();
        self.clients.push(ClientHome { shard, local });
        self.locals[shard].push(global);
        global
    }

    /// Translates global client ids to one shard's local ids.
    ///
    /// # Panics
    ///
    /// Panics if a client is unknown or lives on a different shard.
    fn to_local(&self, shard: usize, members: &[ClientId]) -> Vec<ClientId> {
        members
            .iter()
            .map(|&c| {
                let home = self.clients.get(c).unwrap_or_else(|| {
                    panic!("unknown client {c}");
                });
                assert!(
                    home.shard == shard,
                    "client {c} lives on shard {}, not {shard}",
                    home.shard
                );
                home.local
            })
            .collect()
    }

    /// Translates one shard's local client ids back to global ids.
    fn to_global(&self, shard: usize, members: &[ClientId]) -> Vec<ClientId> {
        members
            .iter()
            .filter_map(|&l| self.locals[shard].get(l).copied())
            .collect()
    }

    /// Installs the initial view of `group` over global client ids, on
    /// the group's shard.
    ///
    /// # Panics
    ///
    /// Panics if the group already has a view, `members` is empty, or
    /// a member was not added for this group's shard.
    pub fn install_initial_view_in(&mut self, group: GroupId, members: Vec<ClientId>) {
        let shard = self.map.shard_of(group);
        let local = self.to_local(shard, &members);
        self.worlds[shard].install_initial_view_in(group, local);
    }

    /// Injects a membership change into `group` (global client ids).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SimWorld::inject_change_in`].
    pub fn inject_change_in(&mut self, group: GroupId, joined: Vec<ClientId>, left: Vec<ClientId>) {
        let shard = self.map.shard_of(group);
        let joined = self.to_local(shard, &joined);
        let left = self.to_local(shard, &left);
        self.worlds[shard].inject_change_in(group, joined, left);
    }

    /// Advances every shard's clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        for w in &mut self.worlds {
            w.run_until(t);
        }
    }

    /// Runs every shard until no work remains on any ring.
    pub fn run_until_quiescent(&mut self) {
        for w in &mut self.worlds {
            w.run_until_quiescent();
        }
    }

    /// The conservative virtual-time frontier: the maximum over the
    /// per-shard clocks. Safe to report because shards share no
    /// events — no shard can schedule into another shard's past.
    pub fn now(&self) -> SimTime {
        let mut frontier = VtFrontier::ZERO;
        for w in &self.worlds {
            frontier.advance(w.now());
        }
        frontier.time()
    }

    /// `true` when every shard is quiescent.
    pub fn quiescent(&self) -> bool {
        self.worlds.iter().all(SimWorld::quiescent)
    }

    /// The installed view of `group`, with members reported as global
    /// client ids.
    pub fn view_of(&self, group: GroupId) -> Option<View> {
        let shard = self.map.shard_of(group);
        self.worlds[shard]
            .view_of(group)
            .map(|v| self.globalize(shard, v))
    }

    /// Every view `group` has installed, in installation order, with
    /// global member ids.
    pub fn views_of(&self, group: GroupId) -> Vec<View> {
        let shard = self.map.shard_of(group);
        self.worlds[shard]
            .views_of(group)
            .into_iter()
            .map(|v| self.globalize(shard, &v))
            .collect()
    }

    fn globalize(&self, shard: usize, view: &View) -> View {
        View {
            id: view.id,
            group: view.group,
            members: self.to_global(shard, &view.members),
            joined: self.to_global(shard, &view.joined),
            left: self.to_global(shard, &view.left),
        }
    }

    /// Engine counters summed over every shard.
    pub fn stats(&self) -> WorldStats {
        let mut total = WorldStats::default();
        for w in self.worlds.iter().map(SimWorld::stats) {
            total.agreed_messages += w.agreed_messages;
            total.fifo_messages += w.fifo_messages;
            total.token_rotations += w.token_rotations;
            total.views_installed += w.views_installed;
            total.payload_bytes += w.payload_bytes;
            total.messages_lost += w.messages_lost;
            total.retransmissions += w.retransmissions;
            total.retransmission_rounds += w.retransmission_rounds;
            total.daemon_crashes += w.daemon_crashes;
            total.ring_reformations += w.ring_reformations;
        }
        total
    }

    /// Borrows a client handler by global id, downcast to its concrete
    /// type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client<T: Client>(&self, id: ClientId) -> &T {
        let home = self.clients[id];
        self.worlds[home.shard].client::<T>(home.local)
    }

    /// Mutably borrows a client handler by global id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn client_mut<T: Client>(&mut self, id: ClientId) -> &mut T {
        let home = self.clients[id];
        self.worlds[home.shard].client_mut::<T>(home.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_partitions_all_groups() {
        let map = ShardMap::new(4);
        assert_eq!(map.shards(), 4);
        let mut seen = Vec::new();
        for s in 0..4 {
            seen.extend(map.groups_of(s, 10));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(map.shard_of(5), 1);
        assert_eq!(map.groups_of(1, 10), vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }
}

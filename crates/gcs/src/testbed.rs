//! The paper's two testbeds, plus parameterized topologies for the
//! extension studies.

use gkap_sim::Duration;

use crate::config::GcsConfig;
use crate::topology::{MachineCfg, SiteCfg, Topology};

fn us(v: u64) -> Duration {
    Duration::from_micros(v)
}

/// The LAN testbed of §6.1.1: a cluster of thirteen 666 MHz Pentium III
/// dual-processor PCs, one Spread daemon per machine.
///
/// Calibration targets (measured by `repro -- microlan`): Agreed
/// multicast ≈ 1.2–1.4 ms, membership service 2–7 ms for groups of
/// 2–50.
pub fn lan() -> GcsConfig {
    GcsConfig {
        topology: Topology::single_site(13, 2, us(40)),
        token_processing: us(10),
        per_message_processing: us(25),
        per_kb: us(15),
        client_daemon_delay: us(60),
        flow_control_max_msgs: 20,
        membership_rounds: 3,
        membership_per_member: us(35),
        loss_rate: 0.0,
        loss_seed: 0x10_55,
        recovery_batch: 32,
        crash_detection_timeout: Duration::from_millis(5),
        fec_parity: 0,
        fec_parity_max: 4,
        fec_adaptive: false,
        loss_ewma_alpha: 0.2,
        retrans_backoff: Duration::ZERO,
        retrans_backoff_max: Duration::from_millis(10),
        retrans_give_up: 0,
    }
}

/// The WAN testbed of §6.2.1 / Figure 13: eleven machines at JHU
/// (Maryland), one at UCI (California), one at ICU (Korea).
///
/// Round-trip latencies from the paper: JHU–UCI 35 ms, UCI–ICU 150 ms,
/// ICU–JHU 135 ms (we use half of each as one-way latency). Two of the
/// thirteen machines are slower than the cluster machines (a 850 MHz
/// Athlon and a 930 MHz PIII in the paper — close enough to 1.0 that we
/// keep speed 1.0 and the dual-processor JHU configuration; the two
/// remote machines are modelled single-processor).
///
/// Calibration targets (measured by `repro -- microwan`): Agreed
/// multicast ≈ 305/315/335 ms depending on the sender's site,
/// membership service ≈ 450–800 ms.
pub fn wan() -> GcsConfig {
    let sites = vec![
        SiteCfg { name: "JHU".into() },
        SiteCfg { name: "UCI".into() },
        SiteCfg { name: "ICU".into() },
    ];
    let ms_f = Duration::from_millis_f64;
    let latency = vec![
        vec![Duration::ZERO, ms_f(17.5), ms_f(67.5)],
        vec![ms_f(17.5), Duration::ZERO, ms_f(75.0)],
        vec![ms_f(67.5), ms_f(75.0), Duration::ZERO],
    ];
    let mut machines: Vec<MachineCfg> = (0..11)
        .map(|_| MachineCfg {
            site: 0,
            cores: 2,
            speed: 1.0,
        })
        .collect();
    machines.push(MachineCfg {
        site: 1,
        cores: 1,
        speed: 1.0,
    }); // UCI
    machines.push(MachineCfg {
        site: 2,
        cores: 1,
        speed: 1.0,
    }); // ICU
    GcsConfig {
        topology: Topology::new(sites, machines, latency, us(40)),
        token_processing: us(10),
        per_message_processing: us(25),
        per_kb: us(15),
        client_daemon_delay: us(60),
        flow_control_max_msgs: 20,
        membership_rounds: 3,
        membership_per_member: us(35),
        loss_rate: 0.0,
        loss_seed: 0x10_55,
        recovery_batch: 32,
        crash_detection_timeout: Duration::from_millis(1000),
        fec_parity: 0,
        fec_parity_max: 4,
        fec_adaptive: false,
        loss_ewma_alpha: 0.2,
        retrans_backoff: Duration::ZERO,
        retrans_backoff_max: Duration::from_millis(2000),
        retrans_give_up: 0,
    }
}

/// A symmetric "medium-delay" WAN used for the crossover study the
/// paper lists as future work (§7): three sites of 5/4/4 machines with
/// the given one-way inter-site latency.
pub fn medium_wan(one_way: Duration) -> GcsConfig {
    let sites = (0..3)
        .map(|i| SiteCfg {
            name: format!("site{i}"),
        })
        .collect();
    let latency = (0..3)
        .map(|a| {
            (0..3)
                .map(|b| if a == b { Duration::ZERO } else { one_way })
                .collect()
        })
        .collect();
    let mut machines = Vec::new();
    for (site, count) in [(0usize, 5usize), (1, 4), (2, 4)] {
        for _ in 0..count {
            machines.push(MachineCfg {
                site,
                cores: 2,
                speed: 1.0,
            });
        }
    }
    GcsConfig {
        topology: Topology::new(sites, machines, latency, us(40)),
        token_processing: us(10),
        per_message_processing: us(25),
        per_kb: us(15),
        client_daemon_delay: us(60),
        flow_control_max_msgs: 20,
        membership_rounds: 3,
        membership_per_member: us(35),
        loss_rate: 0.0,
        loss_seed: 0x10_55,
        recovery_batch: 32,
        crash_detection_timeout: Duration::from_millis(500),
        fec_parity: 0,
        fec_parity_max: 4,
        fec_adaptive: false,
        loss_ewma_alpha: 0.2,
        retrans_backoff: Duration::ZERO,
        retrans_backoff_max: Duration::from_millis(1000),
        retrans_give_up: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_matches_paper_shape() {
        let cfg = lan();
        assert_eq!(cfg.topology.machine_count(), 13);
        assert_eq!(cfg.topology.site_count(), 1);
        assert_eq!(cfg.topology.machine(0).cores, 2);
    }

    #[test]
    fn wan_matches_figure_13() {
        let cfg = wan();
        assert_eq!(cfg.topology.machine_count(), 13);
        assert_eq!(cfg.topology.site_count(), 3);
        assert_eq!(cfg.topology.site_name(0), "JHU");
        assert_eq!(cfg.topology.site_name(2), "ICU");
        // RTTs: one-way x2.
        let rtt_jhu_uci = cfg.topology.site_latency(0, 1).as_millis_f64() * 2.0;
        let rtt_uci_icu = cfg.topology.site_latency(1, 2).as_millis_f64() * 2.0;
        let rtt_icu_jhu = cfg.topology.site_latency(2, 0).as_millis_f64() * 2.0;
        assert_eq!(rtt_jhu_uci, 35.0);
        assert_eq!(rtt_uci_icu, 150.0);
        assert_eq!(rtt_icu_jhu, 135.0);
        // 11 machines at JHU, 1 each elsewhere.
        let jhu = (0..13)
            .filter(|&m| cfg.topology.machine(m).site == 0)
            .count();
        assert_eq!(jhu, 11);
    }

    #[test]
    fn medium_wan_is_symmetric() {
        let cfg = medium_wan(Duration::from_millis(30));
        assert_eq!(cfg.topology.site_count(), 3);
        assert_eq!(cfg.topology.machine_count(), 13);
        assert_eq!(
            cfg.topology.site_latency(0, 2),
            cfg.topology.site_latency(2, 1)
        );
    }
}

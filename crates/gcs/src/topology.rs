//! Physical topology: sites, machines, and inter-site latencies.

use gkap_sim::Duration;

use crate::{MachineId, SiteId};

/// A network site (one location of the testbed, e.g. "JHU").
#[derive(Clone, Debug)]
pub struct SiteCfg {
    /// Human-readable site name.
    pub name: String,
}

/// A machine: lives at a site, hosts one daemon and any number of
/// client processes, and has a fixed number of CPU cores.
#[derive(Clone, Debug)]
pub struct MachineCfg {
    /// The site this machine is located at.
    pub site: SiteId,
    /// Number of processor cores (the paper's cluster machines are
    /// dual-processor).
    pub cores: usize,
    /// Relative CPU speed (1.0 = the paper's 666 MHz PIII baseline;
    /// cryptographic costs are divided by this factor).
    pub speed: f64,
}

/// The physical testbed: sites, machines and a one-way latency matrix.
#[derive(Clone, Debug)]
pub struct Topology {
    sites: Vec<SiteCfg>,
    machines: Vec<MachineCfg>,
    /// One-way latency between sites, `latency[a][b]`.
    latency: Vec<Vec<Duration>>,
    /// One-way latency between two machines at the same site.
    intra_site: Duration,
}

impl Topology {
    /// Builds a topology.
    ///
    /// # Panics
    ///
    /// Panics if the latency matrix is not square of dimension
    /// `sites.len()`, if any machine references an unknown site, if
    /// there are no machines, or if any machine has zero cores or a
    /// non-positive speed.
    pub fn new(
        sites: Vec<SiteCfg>,
        machines: Vec<MachineCfg>,
        latency: Vec<Vec<Duration>>,
        intra_site: Duration,
    ) -> Self {
        assert!(!machines.is_empty(), "topology needs at least one machine");
        assert_eq!(latency.len(), sites.len(), "latency matrix rows");
        for row in &latency {
            assert_eq!(row.len(), sites.len(), "latency matrix columns");
        }
        for m in &machines {
            assert!(m.site < sites.len(), "machine references unknown site");
            assert!(m.cores > 0, "machine must have at least one core");
            assert!(m.speed > 0.0, "machine speed must be positive");
        }
        Topology {
            sites,
            machines,
            latency,
            intra_site,
        }
    }

    /// Single-site topology with `n` identical machines.
    pub fn single_site(n: usize, cores: usize, intra_site: Duration) -> Self {
        Topology::new(
            vec![SiteCfg {
                name: "site0".into(),
            }],
            (0..n)
                .map(|_| MachineCfg {
                    site: 0,
                    cores,
                    speed: 1.0,
                })
                .collect(),
            vec![vec![Duration::ZERO]],
            intra_site,
        )
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Machine configuration.
    pub fn machine(&self, m: MachineId) -> &MachineCfg {
        &self.machines[m]
    }

    /// Site name.
    pub fn site_name(&self, s: SiteId) -> &str {
        &self.sites[s].name
    }

    /// One-way latency between two machines (by their sites; machines
    /// at the same site use the intra-site latency; a machine to itself
    /// is free).
    pub fn machine_latency(&self, a: MachineId, b: MachineId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let (sa, sb) = (self.machines[a].site, self.machines[b].site);
        if sa == sb {
            self.intra_site
        } else {
            self.latency[sa][sb]
        }
    }

    /// One-way latency between two sites.
    pub fn site_latency(&self, a: SiteId, b: SiteId) -> Duration {
        if a == b {
            self.intra_site
        } else {
            self.latency[a][b]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn two_site() -> Topology {
        Topology::new(
            vec![SiteCfg { name: "A".into() }, SiteCfg { name: "B".into() }],
            vec![
                MachineCfg {
                    site: 0,
                    cores: 2,
                    speed: 1.0,
                },
                MachineCfg {
                    site: 0,
                    cores: 2,
                    speed: 1.0,
                },
                MachineCfg {
                    site: 1,
                    cores: 1,
                    speed: 0.5,
                },
            ],
            vec![vec![ms(0), ms(10)], vec![ms(10), ms(0)]],
            Duration::from_micros(50),
        )
    }

    #[test]
    fn latencies_resolve_by_site() {
        let t = two_site();
        assert_eq!(t.machine_latency(0, 0), Duration::ZERO);
        assert_eq!(t.machine_latency(0, 1), Duration::from_micros(50));
        assert_eq!(t.machine_latency(0, 2), ms(10));
        assert_eq!(t.machine_latency(2, 1), ms(10));
        assert_eq!(t.site_latency(0, 1), ms(10));
        assert_eq!(t.site_latency(1, 1), Duration::from_micros(50));
    }

    #[test]
    fn accessors() {
        let t = two_site();
        assert_eq!(t.machine_count(), 3);
        assert_eq!(t.site_count(), 2);
        assert_eq!(t.site_name(1), "B");
        assert_eq!(t.machine(2).cores, 1);
    }

    #[test]
    fn single_site_shape() {
        let t = Topology::single_site(13, 2, Duration::from_micros(60));
        assert_eq!(t.machine_count(), 13);
        assert_eq!(t.site_count(), 1);
        assert_eq!(t.machine_latency(3, 7), Duration::from_micros(60));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_topology_rejected() {
        Topology::single_site(0, 2, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "latency matrix")]
    fn bad_matrix_rejected() {
        Topology::new(
            vec![SiteCfg { name: "A".into() }, SiteCfg { name: "B".into() }],
            vec![MachineCfg {
                site: 0,
                cores: 1,
                speed: 1.0,
            }],
            vec![vec![Duration::ZERO]],
            Duration::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn bad_site_reference_rejected() {
        Topology::new(
            vec![SiteCfg { name: "A".into() }],
            vec![MachineCfg {
                site: 5,
                cores: 1,
                speed: 1.0,
            }],
            vec![vec![Duration::ZERO]],
            Duration::ZERO,
        );
    }
}

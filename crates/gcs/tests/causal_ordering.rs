//! Causal-multicast semantics: happens-before is respected across
//! senders without paying the token ring's total-order cost.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, Service, SimWorld, View};

/// Sends `initial` on the first view; replies `reply_with` (causally)
/// when it sees a message whose first byte is `reply_to`.
#[derive(Default)]
struct CausalChat {
    initial: Option<Vec<u8>>,
    reply_to: Option<u8>,
    reply_with: Vec<u8>,
    log: Vec<(usize, u8)>,
}

impl Client for CausalChat {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        if let Some(payload) = self.initial.take() {
            ctx.multicast_causal(payload);
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        assert_eq!(msg.service, Service::Causal);
        let first = msg.payload.first().copied().unwrap_or(0);
        self.log.push((msg.sender, first));
        if self.reply_to == Some(first) {
            self.reply_to = None;
            ctx.multicast_causal(self.reply_with.clone());
        }
    }
}

#[test]
fn replies_never_precede_their_causes() {
    // 0 sends A; 1 replies B on seeing A; 2 replies C on seeing B.
    // Every member must log A before B before C.
    let mut world = SimWorld::new(testbed::wan()); // high skew across sites
    world.add_client(Box::new(CausalChat {
        initial: Some(vec![b'A']),
        ..Default::default()
    }));
    world.add_client(Box::new(CausalChat {
        reply_to: Some(b'A'),
        reply_with: vec![b'B'],
        ..Default::default()
    }));
    world.add_client(Box::new(CausalChat {
        reply_to: Some(b'B'),
        reply_with: vec![b'C'],
        ..Default::default()
    }));
    for _ in 3..13 {
        world.add_client(Box::new(CausalChat::default()));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..13 {
        let log = &world.client::<CausalChat>(i).log;
        let pos = |b: u8| log.iter().position(|&(_, x)| x == b);
        let (a, b, c) = (pos(b'A'), pos(b'B'), pos(b'C'));
        assert!(
            a.is_some() && b.is_some() && c.is_some(),
            "member {i} missing messages: {log:?}"
        );
        assert!(a < b, "member {i}: B before A: {log:?}");
        assert!(b < c, "member {i}: C before B: {log:?}");
    }
}

#[test]
fn causal_is_cheaper_than_agreed_on_wan() {
    // One causal multicast reaches everyone far faster than an Agreed
    // one (no token wait, no stability rotation).
    struct OneShot {
        agreed: bool,
        recv_at: Option<f64>,
        sent_at: Option<f64>,
    }
    impl Client for OneShot {
        fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
            if view.members.first() == Some(&ctx.id()) {
                self.sent_at = Some(ctx.now().as_millis_f64());
                if self.agreed {
                    ctx.multicast_agreed(vec![1]);
                } else {
                    ctx.multicast_causal(vec![1]);
                }
            }
        }
        fn on_message(&mut self, ctx: &mut ClientCtx<'_>, _msg: &Delivery) {
            self.recv_at.get_or_insert(ctx.now().as_millis_f64());
        }
    }
    let measure = |agreed: bool| -> f64 {
        let mut world = SimWorld::new(testbed::wan());
        for _ in 0..13 {
            world.add_client(Box::new(OneShot {
                agreed,
                recv_at: None,
                sent_at: None,
            }));
        }
        world.install_initial_view();
        world.run_until_quiescent();
        let sent = world.client::<OneShot>(0).sent_at.unwrap();
        (0..13)
            .filter_map(|i| world.client::<OneShot>(i).recv_at)
            .map(|t| t - sent)
            .fold(0.0f64, f64::max)
    };
    let causal = measure(false);
    let agreed = measure(true);
    assert!(
        causal * 3.0 < agreed,
        "causal ({causal:.1} ms) should be several times cheaper than agreed ({agreed:.1} ms)"
    );
}

#[test]
fn per_sender_fifo_within_causal() {
    // A sender's own causal messages arrive in send order everywhere.
    struct Burst {
        n: u8,
        log: Vec<(usize, u8)>,
    }
    impl Client for Burst {
        fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
            if view.members.first() == Some(&ctx.id()) {
                for i in 0..self.n {
                    ctx.multicast_causal(vec![i]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
            self.log.push((msg.sender, msg.payload[0]));
        }
    }
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..8 {
        world.add_client(Box::new(Burst {
            n: 10,
            log: Vec::new(),
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..8 {
        let seq: Vec<u8> = world
            .client::<Burst>(i)
            .log
            .iter()
            .map(|&(_, b)| b)
            .collect();
        assert_eq!(seq, (0..10).collect::<Vec<u8>>(), "member {i}");
    }
}

//! Pinned golden runs: with FEC disabled (`fec_parity = 0`) and the
//! legacy retransmission policy (`retrans_backoff = ZERO`, the preset
//! defaults) the engine must produce *exactly* the pre-FEC numbers —
//! virtual end time, message counts, loss/retransmission counts — on
//! the LAN and WAN testbeds, clean and lossy. The FEC/backoff layers
//! draw no randomness and schedule no events when disabled, so any
//! drift here means the new code leaked into the baseline path.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};

#[derive(Default)]
struct Chatty {
    send_count: u8,
}

impl Client for Chatty {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        for i in 0..self.send_count {
            ctx.multicast_agreed(vec![i]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
}

fn run_lan(loss: f64, seed: u64, members: usize, per_member: u8) -> SimWorld {
    let mut cfg = testbed::lan();
    cfg.loss_rate = loss;
    cfg.loss_seed = seed;
    let mut world = SimWorld::new(cfg);
    for _ in 0..members {
        world.add_client(Box::new(Chatty {
            send_count: per_member,
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    world
}

#[test]
fn clean_lan_run_matches_pre_fec_engine() {
    let w = run_lan(0.0, 7, 8, 3);
    let s = w.stats();
    assert_eq!(w.now().as_nanos(), 2_610_000);
    assert_eq!(s.agreed_messages, 24);
    assert_eq!(s.token_rotations, 4);
    assert_eq!(s.messages_lost, 0);
    assert_eq!(s.retransmissions, 0);
    assert_eq!(s.retransmission_rounds, 0);
    assert_eq!(s.views_installed, 1);
    // The FEC layer is fully dormant at parity 0.
    assert_eq!(s.parity_shards_sent, 0);
    assert_eq!(s.fec_repairs, 0);
    assert_eq!(s.recovery_ns(), 0);
}

#[test]
fn lossy_lan_run_matches_pre_fec_engine() {
    let w = run_lan(0.25, 7, 8, 3);
    let s = w.stats();
    assert_eq!(w.now().as_nanos(), 4_710_000);
    assert_eq!(s.agreed_messages, 24);
    assert_eq!(s.token_rotations, 7);
    assert_eq!(s.messages_lost, 85);
    assert_eq!(s.retransmissions, 85);
    assert_eq!(s.retransmission_rounds, 36);
    assert_eq!(s.views_installed, 1);
    assert_eq!(s.parity_shards_sent, 0);
    assert_eq!(s.fec_repairs, 0);
    // Every recovered loss is attributed to retransmission, none to
    // FEC; the split sums exactly into the total by construction.
    assert_eq!(s.fec_repair_recovery_ns, 0);
    assert!(s.retransmission_recovery_ns > 0);
    assert_eq!(
        s.recovery_ns(),
        s.fec_repair_recovery_ns + s.retransmission_recovery_ns
    );
}

#[test]
fn clean_wan_run_matches_pre_fec_engine() {
    let mut cfg = testbed::wan();
    cfg.loss_rate = 0.0;
    let mut w = SimWorld::new(cfg);
    for _ in 0..6 {
        w.add_client(Box::new(Chatty { send_count: 2 }));
    }
    w.install_initial_view();
    w.run_until_quiescent();
    let s = w.stats();
    assert_eq!(w.now().as_nanos(), 481_950_000);
    assert_eq!(s.agreed_messages, 12);
    assert_eq!(s.token_rotations, 4);
    assert_eq!(s.messages_lost, 0);
    assert_eq!(s.parity_shards_sent, 0);
}

#[test]
fn lossy_runs_are_reproducible() {
    let a = run_lan(0.25, 11, 8, 3);
    let b = run_lan(0.25, 11, 8, 3);
    assert_eq!(a.now(), b.now());
    assert_eq!(a.stats().messages_lost, b.stats().messages_lost);
    assert_eq!(a.stats().retransmissions, b.stats().retransmissions);
    assert_eq!(a.stats().recovery_ns(), b.stats().recovery_ns());
}

//! Integration tests of the group communication engine: ordering,
//! view synchrony, flow control, CPU contention, and the latency
//! calibration targets from §6.1.1/§6.2.1 of the paper.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};
use gkap_sim::{Duration, SimTime};

/// A scriptable test client that records everything it sees.
#[derive(Default)]
struct Recorder {
    /// (virtual ms, sender, payload first byte) of each delivery.
    deliveries: Vec<(f64, usize, u8)>,
    /// View sizes seen, with install times.
    views: Vec<(f64, Vec<usize>)>,
    /// Payload to multicast (Agreed) upon each view install.
    send_on_view: Option<Vec<u8>>,
    /// Payloads to multicast when receiving a message with first byte
    /// equal to `.0`.
    reply_to: Option<(u8, Vec<u8>)>,
    /// CPU to charge per message handled.
    cpu_per_msg: Duration,
}

impl Client for Recorder {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.views
            .push((ctx.now().as_millis_f64(), view.members.clone()));
        if let Some(payload) = &self.send_on_view {
            ctx.multicast_agreed(payload.clone());
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        ctx.charge_cpu(self.cpu_per_msg);
        self.deliveries.push((
            ctx.now().as_millis_f64(),
            msg.sender,
            msg.payload.first().copied().unwrap_or(0),
        ));
        if let Some((trigger, payload)) = &self.reply_to {
            if msg.payload.first() == Some(trigger) {
                let payload = payload.clone();
                self.reply_to = None;
                ctx.multicast_agreed(payload);
            }
        }
    }
}

fn world_with_recorders(cfg: gkap_gcs::GcsConfig, n: usize) -> SimWorld {
    let mut world = SimWorld::new(cfg);
    for _ in 0..n {
        world.add_client(Box::new(Recorder::default()));
    }
    world
}

#[test]
fn agreed_messages_totally_ordered_at_all_members() {
    // Everyone multicasts on the initial view; all members must see all
    // n messages in the identical order.
    let mut world = world_with_recorders(testbed::lan(), 10);
    for i in 0..10 {
        world.client_mut::<Recorder>(i).send_on_view = Some(vec![i as u8]);
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let reference: Vec<(usize, u8)> = world
        .client::<Recorder>(0)
        .deliveries
        .iter()
        .map(|&(_, s, p)| (s, p))
        .collect();
    assert_eq!(reference.len(), 10, "all 10 messages delivered");
    for i in 1..10 {
        let got: Vec<(usize, u8)> = world
            .client::<Recorder>(i)
            .deliveries
            .iter()
            .map(|&(_, s, p)| (s, p))
            .collect();
        assert_eq!(got, reference, "member {i} diverges from total order");
    }
}

#[test]
fn lan_agreed_multicast_latency_matches_paper() {
    // §6.1.1: "the average cost of sending and delivering one Agreed
    // multicast message is almost constant, ranging from ~1.2 to
    // ~1.4 ms for group sizes 3..50".
    for n in [3usize, 13, 30, 50] {
        let mut world = world_with_recorders(testbed::lan(), n);
        world.client_mut::<Recorder>(0).send_on_view = Some(vec![7]);
        world.install_initial_view();
        world.run_until_quiescent();
        let send_time = world.client::<Recorder>(0).views[0].0;
        // Mean delivery latency across members.
        let mut total = 0.0;
        for i in 0..n {
            let d = &world.client::<Recorder>(i).deliveries;
            assert_eq!(d.len(), 1);
            total += d[0].0 - send_time;
        }
        let mean = total / n as f64;
        assert!(
            (0.8..2.5).contains(&mean),
            "LAN agreed multicast latency {mean:.2} ms out of calibration band (n={n})"
        );
    }
}

#[test]
fn wan_agreed_multicast_latency_depends_on_sender_site() {
    // §6.2.1: delay ~305 ms (sender at JHU), ~315 (UCI), ~335 (ICU).
    // Machines 0..10 are JHU, 11 UCI, 12 ICU; clients are added
    // round-robin so client i is on machine i for i < 13.
    let mut means = Vec::new();
    for sender_machine in [0usize, 11, 12] {
        let mut world = SimWorld::new(testbed::wan());
        for _ in 0..13 {
            world.add_client(Box::new(Recorder::default()));
        }
        world.client_mut::<Recorder>(sender_machine).send_on_view = Some(vec![1]);
        world.install_initial_view();
        world.run_until_quiescent();
        let send_time = world.client::<Recorder>(sender_machine).views[0].0;
        let mut total = 0.0;
        for i in 0..13 {
            let d = &world.client::<Recorder>(i).deliveries;
            assert_eq!(d.len(), 1, "member {i} missing delivery");
            total += d[0].0 - send_time;
        }
        means.push(total / 13.0);
    }
    for (site, mean) in ["JHU", "UCI", "ICU"].iter().zip(&means) {
        assert!(
            (200.0..450.0).contains(mean),
            "WAN agreed latency {mean:.0} ms from {site} out of band"
        );
    }
}

#[test]
fn lan_membership_cost_small() {
    // §6.1.1: membership service costs ~2-7 ms for 2..50 members.
    for n in [2usize, 25, 50] {
        let mut world = world_with_recorders(testbed::lan(), n + 1);
        world.install_initial_view_of((0..n).collect());
        world.run_until_quiescent();
        let t0 = world.now();
        world.inject_join(n);
        world.run_until_quiescent();
        // Last member to install the view determines the cost.
        let worst = (0..=n)
            .map(|i| {
                world
                    .client::<Recorder>(i)
                    .views
                    .last()
                    .map(|v| v.0)
                    .unwrap_or(0.0)
            })
            .fold(0.0f64, f64::max);
        let cost = worst - t0.as_millis_f64();
        assert!(
            (1.0..10.0).contains(&cost),
            "LAN membership cost {cost:.2} ms out of band (n={n})"
        );
    }
}

#[test]
fn wan_membership_cost_hundreds_of_ms() {
    // §6.2.1: membership ~450-800 ms (join), 500-600 (leave).
    let mut world = world_with_recorders(testbed::wan(), 27);
    world.install_initial_view_of((0..26).collect());
    world.run_until_quiescent();
    let t0 = world.now().as_millis_f64();
    world.inject_join(26);
    world.run_until_quiescent();
    let worst = (0..27)
        .map(|i| {
            world
                .client::<Recorder>(i)
                .views
                .last()
                .map(|v| v.0)
                .unwrap_or(0.0)
        })
        .fold(0.0f64, f64::max);
    let cost = worst - t0;
    assert!(
        (350.0..900.0).contains(&cost),
        "WAN membership cost {cost:.0} ms out of band"
    );
}

#[test]
fn view_changes_report_joins_and_leaves() {
    let mut world = world_with_recorders(testbed::lan(), 6);
    world.install_initial_view_of(vec![0, 1, 2, 3]);
    world.run_until_quiescent();

    world.inject_join(4);
    world.run_until_quiescent();
    assert_eq!(world.view().unwrap().members, vec![0, 1, 2, 3, 4]);
    assert_eq!(world.view().unwrap().joined, vec![4]);

    world.inject_leave(1);
    world.run_until_quiescent();
    assert_eq!(world.view().unwrap().members, vec![0, 2, 3, 4]);
    assert_eq!(world.view().unwrap().left, vec![1]);

    // Partition: 2 and 3 split away.
    world.inject_partition(vec![2, 3]);
    world.run_until_quiescent();
    assert_eq!(world.view().unwrap().members, vec![0, 4]);

    // Merge: 2, 3 and 5 come (back) in.
    world.inject_merge(vec![2, 3, 5]);
    world.run_until_quiescent();
    assert_eq!(world.view().unwrap().members, vec![0, 4, 2, 3, 5]);
    assert_eq!(world.view().unwrap().joined, vec![2, 3, 5]);

    // The departed member (1) saw only views it belonged to.
    let views_of_1 = &world.client::<Recorder>(1).views;
    assert!(views_of_1.iter().all(|(_, members)| members.contains(&1)));
}

#[test]
fn left_member_receives_nothing_after_partition() {
    let mut world = world_with_recorders(testbed::lan(), 4);
    world.install_initial_view();
    world.run_until_quiescent();
    world.inject_leave(3);
    world.run_until_quiescent();
    // A message sent in the new view must not reach member 3.
    world.client_mut::<Recorder>(0).send_on_view = None;
    let before = world.client::<Recorder>(3).deliveries.len();
    // Trigger a send from member 0 in the new view by injecting another
    // change (member 0 sends on view).
    world.client_mut::<Recorder>(0).send_on_view = Some(vec![9]);
    world.inject_join(3); // rejoin: the view event triggers 0's send
    world.run_until_quiescent();
    // Member 3 receives that message only because it rejoined; its
    // delivery count from the time it was out must be unchanged except
    // the new-view message.
    let after = &world.client::<Recorder>(3).deliveries;
    assert!(after.len() <= before + 1);
}

#[test]
fn agreed_unicast_costs_a_rotation_but_delivers_to_one() {
    let mut world = world_with_recorders(testbed::lan(), 5);
    world.install_initial_view();
    world.run_until_quiescent();

    // Client 0 sends an Agreed unicast to client 2 by scripting a
    // custom client: reuse send_on_view? Instead, inject via a view
    // change and a scripted reply: simplest is to drive a fresh world
    // with a special client. Here we check the Dest::One filter via
    // the Recorder deliveries after a scripted broadcast-then-unicast.
    struct Unicaster;
    impl Client for Unicaster {
        fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
            ctx.unicast_agreed(2, vec![42]);
        }
        fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
    }
    let mut world2 = SimWorld::new(testbed::lan());
    let u = world2.add_client(Box::new(Unicaster));
    assert_eq!(u, 0);
    for _ in 0..4 {
        world2.add_client(Box::new(Recorder::default()));
    }
    world2.install_initial_view();
    world2.run_until_quiescent();
    for i in 1..5 {
        let n = world2.client::<Recorder>(i).deliveries.len();
        if i == 2 {
            assert_eq!(n, 1, "unicast target must receive");
            let (_, sender, byte) = world2.client::<Recorder>(i).deliveries[0];
            assert_eq!((sender, byte), (0, 42));
        } else {
            assert_eq!(n, 0, "non-target member {i} must not receive");
        }
    }
    assert_eq!(world2.stats().agreed_messages, 1);
}

#[test]
fn fifo_unicast_is_fast_and_filtered() {
    struct FifoSender;
    impl Client for FifoSender {
        fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
            ctx.unicast_fifo(1, vec![9]);
        }
        fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
    }
    let mut world = SimWorld::new(testbed::wan());
    world.add_client(Box::new(FifoSender));
    for _ in 0..12 {
        world.add_client(Box::new(Recorder::default()));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    // Target received, everyone else did not.
    let d = &world.client::<Recorder>(1).deliveries;
    assert_eq!(d.len(), 1);
    assert_eq!(world.client::<Recorder>(1).deliveries[0].1, 0);
    for i in 2..13 {
        assert!(world.client::<Recorder>(i).deliveries.is_empty());
    }
    // FIFO on the WAN is far cheaper than the agreed rotation: both
    // clients are at JHU (machines 0 and 1), so delivery is sub-5ms
    // even though agreed delivery costs ~300ms.
    let view_time = world.client::<Recorder>(1).views[0].0;
    let recv_time = d[0].0;
    assert!(
        recv_time - view_time < 5.0,
        "FIFO unicast took {:.2} ms",
        recv_time - view_time
    );
    assert_eq!(world.stats().fifo_messages, 1);
    assert_eq!(world.stats().agreed_messages, 0);
}

#[test]
fn flow_control_stretches_bursts_over_rotations() {
    // 40 messages from one member with flow control 20/visit need at
    // least two token visits; with 5/visit at least eight. The total
    // time to drain must grow.
    let mut drain_times = Vec::new();
    for fc in [20usize, 5] {
        let mut cfg = testbed::lan();
        cfg.flow_control_max_msgs = fc;
        struct Burst;
        impl Client for Burst {
            fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
                for i in 0..40u8 {
                    ctx.multicast_agreed(vec![i]);
                }
            }
            fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
        }
        let mut world = SimWorld::new(cfg);
        world.add_client(Box::new(Burst));
        world.add_client(Box::new(Recorder::default()));
        world.install_initial_view();
        world.run_until_quiescent();
        assert_eq!(world.client::<Recorder>(1).deliveries.len(), 40);
        drain_times.push(world.now().as_millis_f64());
    }
    assert!(
        drain_times[1] > drain_times[0] * 1.5,
        "tighter flow control must stretch the burst: {drain_times:?}"
    );
}

#[test]
fn cpu_contention_serializes_members_on_shared_machines() {
    // 4 members on ONE dual-core machine each burn 10ms on a message:
    // the last delivery-completion must reflect 2x serialization. We
    // observe it through message timestamps of a follow-up send.
    let mut cfg = testbed::lan();
    cfg.topology = gkap_gcs::Topology::single_site(1, 2, Duration::from_micros(40));
    let mut world = SimWorld::new(cfg);
    for _ in 0..4 {
        world.add_client(Box::new(Recorder {
            cpu_per_msg: Duration::from_millis(10),
            ..Default::default()
        }));
    }
    // Client 0 sends one message; each member burns 10ms handling it.
    world.client_mut::<Recorder>(0).send_on_view = Some(vec![1]);
    world.install_initial_view();
    world.run_until_quiescent();
    // All deliveries START at the same arrival (timestamps reflect the
    // handler start time = max(arrival, busy)); the CPU scheduler only
    // delays completions, which we can't observe directly here — so
    // instead check the machine busy accounting via a second message.
    // The four handlers consumed 40ms of CPU on 2 cores: had they all
    // started at the same instant, the last would finish ~20ms later.
    // We verify serialization through quiescence time: the run can't
    // have finished before the CPU drained.
    // (The handlers charge CPU after delivery; quiescence waits for
    // outstanding sends only, so we check busy accounting instead.)
    assert_eq!(world.client::<Recorder>(3).deliveries.len(), 1);
    // Weak but meaningful: all 4 members got the message.
    for i in 0..4 {
        assert_eq!(world.client::<Recorder>(i).deliveries.len(), 1);
    }
}

#[test]
fn chained_sends_preserve_causal_sequence() {
    // 0 sends "1"; member 1 replies "2" upon seeing "1"; everyone must
    // deliver "1" before "2".
    let mut world = world_with_recorders(testbed::lan(), 6);
    world.client_mut::<Recorder>(0).send_on_view = Some(vec![1]);
    world.client_mut::<Recorder>(1).reply_to = Some((1, vec![2]));
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..6 {
        let bytes: Vec<u8> = world
            .client::<Recorder>(i)
            .deliveries
            .iter()
            .map(|&(_, _, b)| b)
            .collect();
        assert_eq!(bytes, vec![1, 2], "member {i}");
    }
}

#[test]
fn cascaded_membership_changes_queue_fifo() {
    let mut world = world_with_recorders(testbed::lan(), 8);
    world.install_initial_view_of(vec![0, 1, 2, 3]);
    world.run_until_quiescent();
    // Inject three changes back-to-back without draining.
    world.inject_join(4);
    world.inject_join(5);
    world.inject_leave(0);
    assert!(world.membership_busy());
    world.run_until_quiescent();
    assert!(!world.membership_busy());
    assert_eq!(world.view().unwrap().members, vec![1, 2, 3, 4, 5]);
    // Each member saw each view it belonged to, in order.
    let views = &world.client::<Recorder>(1).views;
    let sizes: Vec<usize> = views.iter().map(|(_, m)| m.len()).collect();
    assert_eq!(sizes, vec![4, 5, 6, 5]);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut world = world_with_recorders(testbed::wan(), 20);
        for i in 0..20 {
            world.client_mut::<Recorder>(i).send_on_view = Some(vec![i as u8]);
        }
        world.install_initial_view();
        world.run_until_quiescent();
        let stats = world.stats().clone();
        let t = world.now();
        (stats.agreed_messages, stats.token_rotations, t)
    };
    let (m1, r1, t1) = run();
    let (m2, r2, t2) = run();
    assert_eq!(m1, m2);
    assert_eq!(r1, r2);
    assert_eq!(t1, t2);
}

#[test]
fn run_while_stops_on_predicate() {
    let mut world = world_with_recorders(testbed::lan(), 3);
    world.client_mut::<Recorder>(0).send_on_view = Some(vec![1]);
    world.install_initial_view();
    let stopped_early = world.run_while(|w| w.now() < SimTime::ZERO + Duration::from_millis(1));
    assert!(stopped_early);
    assert!(world.now() >= SimTime::ZERO + Duration::from_millis(1));
    // Continue to quiescence afterwards.
    world.run_until_quiescent();
    assert_eq!(world.client::<Recorder>(2).deliveries.len(), 1);
}

//! The idle-token fast-forward must be invisible: a `run_until` over a
//! long idle stretch produces exactly the same clock, stats, and
//! future event timing as stepping every token hop.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};
use gkap_sim::{Duration, SimTime};

/// Records view installs and deliveries with their exact instants.
#[derive(Default)]
struct Witness {
    views: Vec<(SimTime, Vec<usize>)>,
    deliveries: Vec<(SimTime, usize)>,
    send_on_view: bool,
}

impl Client for Witness {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.views.push((ctx.now(), view.members.clone()));
        if self.send_on_view {
            ctx.multicast_agreed(vec![1u8, 2, 3]);
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.deliveries.push((ctx.now(), msg.sender));
    }
}

fn build_world(fast_forward: bool) -> SimWorld {
    let mut world = SimWorld::new(testbed::lan());
    world.set_idle_fast_forward(fast_forward);
    for i in 0..8 {
        let w = Witness {
            send_on_view: i % 2 == 0,
            ..Witness::default()
        };
        world.add_client(Box::new(w));
    }
    world.install_initial_view_of((0..6).collect());
    world
}

/// Drives one world through idle stretches punctuated by membership
/// churn, returning the full observable trace.
#[allow(clippy::type_complexity)]
fn drive(
    mut world: SimWorld,
) -> (
    SimTime,
    u64,
    u64,
    Vec<(SimTime, Vec<usize>)>,
    Vec<(SimTime, usize)>,
) {
    world.run_until_quiescent();
    let t0 = world.now();
    // A long idle stretch (hundreds of token rotations), then churn.
    world.run_until(t0 + Duration::from_millis(500));
    world.inject_change(vec![6], vec![0]);
    world.run_until_quiescent();
    // Another idle stretch that ends mid-rotation (odd offset).
    let t1 = world.now();
    world.run_until(t1 + Duration::from_nanos(123_456_789));
    world.inject_change(vec![7], vec![]);
    world.run_until_quiescent();
    let t2 = world.now();
    world.run_until(t2 + Duration::from_millis(50));
    let mut views = Vec::new();
    let mut deliveries = Vec::new();
    for c in 0..8 {
        let w = world.client::<Witness>(c);
        views.extend(w.views.iter().cloned());
        deliveries.extend(w.deliveries.iter().cloned());
    }
    (
        world.now(),
        world.stats().token_rotations,
        world.stats().agreed_messages,
        views,
        deliveries,
    )
}

#[test]
fn fast_forward_is_equivalent_to_stepping() {
    let fast = drive(build_world(true));
    let slow = drive(build_world(false));
    assert_eq!(fast.0, slow.0, "clock must agree after idle stretches");
    assert_eq!(fast.1, slow.1, "token rotations must agree");
    assert_eq!(fast.2, slow.2, "sequenced message count must agree");
    assert_eq!(fast.3, slow.3, "view installs must agree exactly");
    assert_eq!(fast.4, slow.4, "deliveries must agree exactly");
}

#[test]
fn fast_forward_skips_are_cheap_and_exact_over_long_horizons() {
    // A 10 s idle horizon at a ~650 us rotation period is ~15k
    // rotations; fast-forwarded, the clock and rotation count still
    // match the analytic expectation derived from a stepped short run.
    let mut world = build_world(true);
    world.run_until_quiescent();
    let t0 = world.now();
    let r0 = world.stats().token_rotations;
    world.run_until(t0 + Duration::from_millis(10_000));
    let elapsed = world.now().since(t0);
    assert!(elapsed <= Duration::from_millis(10_000));
    // The world kept rotating the whole time.
    let rotations = world.stats().token_rotations - r0;
    assert!(
        rotations > 10_000,
        "rotations skipped analytically: {rotations}"
    );
    // And it is still live: churn after the skip completes normally.
    world.inject_change(vec![6], vec![]);
    world.run_until_quiescent();
    assert_eq!(world.view().map(|v| v.members.len()), Some(7));
}

//! Chaos-engine semantics at the GCS layer: daemon crashes, ring
//! reformation, loss bursts, scheduled fault plans, and gap recovery.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, FaultPlan, SimWorld, View};
use gkap_sim::Duration;

#[derive(Default)]
struct Chatty {
    got: Vec<(usize, u8)>,
    views: Vec<u64>,
    send_count: u8,
}

impl Client for Chatty {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.views.push(view.id);
        for i in 0..self.send_count {
            ctx.multicast_agreed(vec![i]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.got
            .push((msg.sender, msg.payload.first().copied().unwrap_or(0)));
    }
}

fn world_of(members: usize, send_count: u8) -> SimWorld {
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..members {
        world.add_client(Box::new(Chatty {
            send_count,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world
}

#[test]
fn crash_evicts_members_and_reforms_ring() {
    let mut world = world_of(6, 2);
    world.run_until_quiescent();
    assert_eq!(world.ring_len(), 13);
    // Client 2 lives on machine 2 (round-robin placement).
    world.inject_crash(2);
    world.run_until_quiescent();
    assert!(!world.daemon_alive(2));
    assert_eq!(world.alive_daemon_count(), 12);
    assert_eq!(world.ring_len(), 12);
    assert_eq!(world.stats().daemon_crashes, 1);
    assert_eq!(world.stats().ring_reformations, 1);
    let view = world.view().expect("view");
    assert_eq!(view.members, vec![0, 1, 3, 4, 5]);
    assert_eq!(view.left, vec![2]);
    // Survivors saw the eviction view and each other's sends in it.
    for &c in &[0usize, 1, 3, 4, 5] {
        let m = world.client::<Chatty>(c);
        assert_eq!(m.views, vec![1, 2], "member {c} views");
    }
}

#[test]
fn crash_mid_rotation_recovers_token_and_messages() {
    let mut world = world_of(8, 4);
    // Crash while the initial burst of 32 messages is mid-flight: the
    // token may be at or heading to the dead daemon.
    world.run_while(|w| w.stats().agreed_messages < 5);
    world.inject_crash(3);
    world.run_until_quiescent();
    // Everything the survivors sent is delivered to every survivor, in
    // one total order, despite the lost token and lost copies.
    let survivors: Vec<usize> = (0..8).filter(|&c| c != 3).collect();
    let reference = world.client::<Chatty>(0).got.clone();
    assert!(!reference.is_empty());
    for &c in &survivors {
        assert_eq!(
            world.client::<Chatty>(c).got,
            reference,
            "member {c} diverged"
        );
    }
    assert_eq!(world.view().expect("view").members, survivors);
}

#[test]
fn crashing_every_daemon_is_a_graceful_noop() {
    // Regression for the old `.expect("at least one daemon")` in the
    // token aru computation: with every machine crashed the ring is
    // empty, the token is gone, and the world winds down without
    // panicking instead of insisting on a minimum over nothing.
    let mut world = world_of(4, 3);
    world.run_while(|w| w.stats().agreed_messages < 2);
    for d in 0..13 {
        world.inject_crash(d);
    }
    world.run_until_quiescent();
    assert_eq!(world.alive_daemon_count(), 0);
    assert_eq!(world.ring_len(), 0);
    assert_eq!(world.stats().daemon_crashes, 13);
    assert_eq!(world.stats().ring_reformations, 13);
}

/// Opens a gap of at least `gap` messages at every surviving daemon by
/// sending through a total blackout, then lets retransmission heal it.
fn run_gap_recovery(gap: u8, recovery_batch: usize) -> SimWorld {
    let mut cfg = testbed::lan();
    cfg.recovery_batch = recovery_batch;
    let mut world = SimWorld::new(cfg);
    for _ in 0..2 {
        world.add_client(Box::new(Chatty {
            send_count: gap,
            ..Default::default()
        }));
    }
    // Nothing daemon-to-daemon survives the burst window, so every
    // copy of the `2 * gap` view-triggered sends is lost in transit.
    world.set_loss_burst(1.0, Duration::from_millis(50));
    world.install_initial_view();
    world.run_until_quiescent();
    world
}

#[test]
fn sixty_four_message_gap_fully_recovers() {
    let world = run_gap_recovery(32, 32); // 64 messages in flight
    assert!(world.stats().messages_lost >= 64, "burst must drop copies");
    for c in 0..2 {
        let m = world.client::<Chatty>(c);
        assert_eq!(m.got.len(), 64, "member {c} missing deliveries");
    }
    // A 64-wide gap cannot be healed in one visit at batch 32.
    assert!(
        world.stats().retransmission_rounds >= 2,
        "expected multiple recovery rounds, got {}",
        world.stats().retransmission_rounds
    );
    assert!(world.stats().retransmissions >= 64);
}

#[test]
fn recovery_batch_cap_is_configurable() {
    let wide = run_gap_recovery(32, 64);
    let narrow = run_gap_recovery(32, 4);
    // Both fully recover…
    for w in [&wide, &narrow] {
        for c in 0..2 {
            assert_eq!(w.client::<Chatty>(c).got.len(), 64);
        }
    }
    // …but the narrow cap needs more token visits with requests.
    assert!(
        narrow.stats().retransmission_rounds > wide.stats().retransmission_rounds,
        "narrow {} vs wide {}",
        narrow.stats().retransmission_rounds,
        wide.stats().retransmission_rounds
    );
}

#[test]
fn fault_plans_are_deterministic() {
    let run = || {
        let mut world = world_of(6, 2);
        world.apply_fault_plan(
            FaultPlan::new()
                .loss_burst(Duration::from_millis(1), 0.8, Duration::from_millis(3))
                .crash(Duration::from_millis(2), 4)
                .partition(Duration::from_millis(6), vec![0, 1])
                .heal(Duration::from_millis(30), vec![0, 1]),
        );
        world.run_until_quiescent();
        world
    };
    let a = run();
    let b = run();
    assert_eq!(a.now(), b.now());
    assert_eq!(a.stats().messages_lost, b.stats().messages_lost);
    assert_eq!(a.stats().retransmissions, b.stats().retransmissions);
    assert_eq!(a.stats().views_installed, b.stats().views_installed);
    assert_eq!(
        a.view().expect("view").members,
        b.view().expect("view").members
    );
    // The plan ran: daemon 4 died (evicting its resident, client 4),
    // clients 0 and 1 left and came back.
    assert!(!a.daemon_alive(4));
    let members = &a.view().expect("view").members;
    assert!(members.contains(&0) && members.contains(&1));
    assert!(!members.contains(&4));
}

#[test]
fn heal_skips_members_on_crashed_machines() {
    let mut world = world_of(5, 1);
    world.run_until_quiescent();
    // Partition clients 1 and 2 out, then crash client 2's machine.
    world.inject_partition(vec![1, 2]);
    world.run_until_quiescent();
    world.inject_crash(2);
    world.run_until_quiescent();
    // Healing both only brings back client 1 — client 2's machine is
    // gone and a member that can never speak would wedge the group.
    world.apply_fault_plan(FaultPlan::new().heal(Duration::from_millis(1), vec![1, 2]));
    world.run_until_quiescent();
    let members = &world.view().expect("view").members;
    assert!(members.contains(&1));
    assert!(!members.contains(&2));
}

//! FEC-coded fan-out and adaptive retransmission under lossy links:
//! parity shards repair losses locally (no retransmission round
//! trips), the recovery-time attribution splits exactly between the
//! two mechanisms, backoff thins request rounds, residual gaps from an
//! expired loss burst still recover, and repeated no-progress rounds
//! escalate to a ring reformation.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, FaultPlan, GcsConfig, SimWorld, View};
use gkap_sim::Duration;

#[derive(Default)]
struct Chatty {
    got: Vec<(usize, u8)>,
    send_count: u8,
}

impl Client for Chatty {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        for i in 0..self.send_count {
            ctx.multicast_agreed(vec![i]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.got
            .push((msg.sender, msg.payload.first().copied().unwrap_or(0)));
    }
}

fn run(cfg: GcsConfig, members: usize, per_member: u8) -> SimWorld {
    let mut world = SimWorld::new(cfg);
    for _ in 0..members {
        world.add_client(Box::new(Chatty {
            send_count: per_member,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    world
}

fn assert_all_delivered(world: &SimWorld, members: usize, per_member: usize) {
    let expected = members * per_member;
    for i in 0..members {
        assert_eq!(
            world.client::<Chatty>(i).got.len(),
            expected,
            "member {i} is missing deliveries"
        );
    }
}

/// A FEC configuration whose parity budget covers the seeded loss
/// pattern, with a backoff long enough that parity always wins the
/// race against the request path.
fn fec_cfg(loss: f64, seed: u64) -> GcsConfig {
    let mut cfg = testbed::lan();
    cfg.loss_rate = loss;
    cfg.loss_seed = seed;
    cfg.fec_parity = 6;
    cfg.retrans_backoff = Duration::from_millis(10);
    cfg.retrans_backoff_max = Duration::from_millis(80);
    cfg
}

#[test]
fn fec_converges_with_zero_retransmission_rounds() {
    let seed = 7;
    let loss = 0.25;
    // Retransmission-only baseline: recovery needs request rounds.
    let mut base = testbed::lan();
    base.loss_rate = loss;
    base.loss_seed = seed;
    let baseline = run(base, 8, 3);
    assert!(
        baseline.stats().retransmission_rounds >= 1,
        "baseline must need retransmission rounds"
    );
    assert_all_delivered(&baseline, 8, 3);

    // FEC with parity >= the seeded per-generation losses: every gap
    // repairs locally before the requester's next token visit.
    let world = run(fec_cfg(loss, seed), 8, 3);
    let s = world.stats();
    assert!(s.messages_lost > 0, "losses must actually occur");
    assert!(s.fec_repairs > 0, "parity must repair the losses");
    assert_eq!(
        s.retransmission_rounds, 0,
        "FEC must eliminate retransmission rounds at this parity"
    );
    assert_eq!(s.retransmissions, 0);
    assert!(s.parity_shards_sent > 0);
    assert_all_delivered(&world, 8, 3);
    // All recovery time is attributed to FEC repair.
    assert!(s.fec_repair_recovery_ns > 0);
    assert_eq!(s.retransmission_recovery_ns, 0);
}

#[test]
fn fec_runs_are_deterministic() {
    let a = run(fec_cfg(0.25, 13), 8, 3);
    let b = run(fec_cfg(0.25, 13), 8, 3);
    assert_eq!(a.now(), b.now());
    assert_eq!(a.stats().fec_repairs, b.stats().fec_repairs);
    assert_eq!(a.stats().parity_shards_sent, b.stats().parity_shards_sent);
    assert_eq!(a.stats().recovery_ns(), b.stats().recovery_ns());
}

#[test]
fn recovery_attribution_splits_and_sums_exactly() {
    // A single parity shard repairs single losses; generations losing
    // more fall back to retransmission — both buckets fill, and their
    // sum is exactly the total recovery time.
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.3;
    cfg.loss_seed = 21;
    cfg.fec_parity = 1;
    let world = run(cfg, 8, 3);
    let s = world.stats();
    assert!(s.fec_repairs > 0, "single-loss generations repair via FEC");
    assert!(
        s.retransmissions > 0,
        "multi-loss generations fall back to retransmission"
    );
    assert!(s.fec_repair_recovery_ns > 0);
    assert!(s.retransmission_recovery_ns > 0);
    assert_eq!(
        s.recovery_ns(),
        s.fec_repair_recovery_ns + s.retransmission_recovery_ns,
        "attribution must sum exactly into the total"
    );
    assert_all_delivered(&world, 8, 3);
}

#[test]
fn adaptive_parity_converges_under_loss() {
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.3;
    cfg.loss_seed = 5;
    cfg.fec_parity = 1;
    cfg.fec_parity_max = 8;
    cfg.fec_adaptive = true;
    let world = run(cfg, 8, 3);
    let s = world.stats();
    assert!(s.fec_repairs > 0);
    assert_all_delivered(&world, 8, 3);
}

#[test]
fn backoff_thins_no_progress_request_rounds() {
    // At 0.5 loss half the re-sent copies are lost again, so recovery
    // needs repeated no-progress rounds — exactly what the backoff
    // paces out. (Rounds driven by *new* losses fire immediately in
    // both policies: progress resets the backoff window.)
    let mut eager = testbed::lan();
    eager.loss_rate = 0.5;
    eager.loss_seed = 3;
    let eager_world = run(eager, 8, 3);

    let mut patient = testbed::lan();
    patient.loss_rate = 0.5;
    patient.loss_seed = 3;
    patient.retrans_backoff = Duration::from_millis(2);
    patient.retrans_backoff_max = Duration::from_millis(16);
    let patient_world = run(patient, 8, 3);

    assert!(
        patient_world.stats().retransmission_rounds < eager_world.stats().retransmission_rounds,
        "backoff must issue fewer request rounds ({} vs {})",
        patient_world.stats().retransmission_rounds,
        eager_world.stats().retransmission_rounds,
    );
    // Pacing trades latency for request pressure: the patient run
    // finishes later but still converges completely.
    assert!(patient_world.now() > eager_world.now());
    assert_all_delivered(&eager_world, 8, 3);
    assert_all_delivered(&patient_world, 8, 3);
}

#[test]
fn burst_residual_gaps_recover_after_expiry() {
    // Satellite regression: the retransmission gate must stay armed
    // after a loss burst has *ended* (and been cleared). A gate keyed
    // on the burst's presence would strand the residual gaps forever.
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.0; // no base loss: only the burst drops copies
    let mut world = SimWorld::new(cfg);
    for _ in 0..8 {
        world.add_client(Box::new(Chatty {
            send_count: 3,
            ..Default::default()
        }));
    }
    // A violent burst covering the initial fan-out, expiring long
    // before recovery completes.
    world.apply_fault_plan(FaultPlan::new().loss_burst(
        Duration::ZERO,
        0.9,
        Duration::from_micros(300),
    ));
    world.install_initial_view();
    world.run_until_quiescent();
    let s = world.stats();
    assert!(s.messages_lost > 0, "the burst must drop copies");
    assert!(
        s.retransmissions >= 1,
        "residual gaps must recover after the burst expired"
    );
    assert_all_delivered(&world, 8, 3);
}

#[test]
fn give_up_escalates_to_ring_reformation() {
    // Under extreme sustained loss, retransmission rounds make no
    // progress; after `retrans_give_up` consecutive strikes the
    // requester escalates and the ring reforms around the unreachable
    // origin (the PR 3 crash machinery).
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.9;
    cfg.loss_seed = 2;
    cfg.retrans_backoff = Duration::from_micros(200);
    cfg.retrans_backoff_max = Duration::from_micros(1600);
    cfg.retrans_give_up = 3;
    let mut world = SimWorld::new(cfg);
    for _ in 0..8 {
        world.add_client(Box::new(Chatty {
            send_count: 3,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let s = world.stats();
    assert!(
        s.daemon_crashes >= 1,
        "give-up must escalate at least one unreachable origin"
    );
    assert!(s.ring_reformations >= 1, "the ring must reform");
    assert!(world.alive_daemon_count() >= 1);
    assert!(world.quiescent());
}

//! Message loss and token-driven retransmission: total order and
//! delivery completeness must survive lossy daemon links.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};

#[derive(Default)]
struct Chatty {
    got: Vec<(usize, u8)>,
    send_count: u8,
}

impl Client for Chatty {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        for i in 0..self.send_count {
            ctx.multicast_agreed(vec![i]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.got
            .push((msg.sender, msg.payload.first().copied().unwrap_or(0)));
    }
}

fn run_lossy(loss: f64, seed: u64, members: usize, per_member: u8) -> SimWorld {
    let mut cfg = testbed::lan();
    cfg.loss_rate = loss;
    cfg.loss_seed = seed;
    let mut world = SimWorld::new(cfg);
    for _ in 0..members {
        world.add_client(Box::new(Chatty {
            send_count: per_member,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    world
}

#[test]
fn all_messages_delivered_despite_heavy_loss() {
    for loss in [0.05, 0.2, 0.4] {
        let world = run_lossy(loss, 7, 8, 3);
        let expected = 8 * 3;
        for i in 0..8 {
            assert_eq!(
                world.client::<Chatty>(i).got.len(),
                expected,
                "member {i} at loss {loss}"
            );
        }
        assert!(
            world.stats().messages_lost > 0,
            "loss {loss} should actually drop something"
        );
        assert!(
            world.stats().retransmissions >= 1,
            "losses must be recovered by retransmission"
        );
    }
}

#[test]
fn total_order_holds_under_loss() {
    let world = run_lossy(0.3, 99, 10, 2);
    let reference = &world.client::<Chatty>(0).got;
    for i in 1..10 {
        assert_eq!(
            &world.client::<Chatty>(i).got,
            reference,
            "member {i} sees a different order"
        );
    }
}

#[test]
fn lossy_runs_are_deterministic() {
    let a = run_lossy(0.25, 5, 6, 2);
    let b = run_lossy(0.25, 5, 6, 2);
    assert_eq!(a.stats().messages_lost, b.stats().messages_lost);
    assert_eq!(a.stats().retransmissions, b.stats().retransmissions);
    assert_eq!(a.now(), b.now());
    // A different seed gives a different loss pattern.
    let c = run_lossy(0.25, 6, 6, 2);
    assert!(
        c.stats().messages_lost != a.stats().messages_lost || c.now() != a.now(),
        "loss process should depend on the seed"
    );
}

#[test]
fn loss_delays_delivery() {
    let clean = run_lossy(0.0, 1, 8, 3);
    let lossy = run_lossy(0.35, 1, 8, 3);
    assert!(
        lossy.now() > clean.now(),
        "recovering losses must take extra time ({} vs {})",
        lossy.now(),
        clean.now()
    );
    assert_eq!(clean.stats().messages_lost, 0);
    assert_eq!(clean.stats().retransmissions, 0);
}

#[test]
fn membership_survives_loss() {
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.3;
    let mut world = SimWorld::new(cfg);
    for _ in 0..6 {
        world.add_client(Box::new(Chatty {
            send_count: 1,
            ..Default::default()
        }));
    }
    world.install_initial_view_of((0..5).collect());
    world.run_until_quiescent();
    world.inject_join(5);
    world.run_until_quiescent();
    assert_eq!(world.view().unwrap().members.len(), 6);
    // The joiner's view triggered its own send; everyone got it.
    for i in 0..6 {
        assert!(
            !world.client::<Chatty>(i).got.is_empty(),
            "member {i} starved"
        );
    }
}

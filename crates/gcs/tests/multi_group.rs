//! Multi-group engine semantics: one daemon ring carrying several
//! independent groups with per-group view state over the shared token
//! and link model.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};
use gkap_sim::Duration;

/// Records views and deliveries; multicasts a tagged payload on every
/// view install so cross-group isolation can be checked end to end.
#[derive(Default)]
struct Member {
    tag: u8,
    views: Vec<View>,
    deliveries: Vec<(usize, u8)>,
}

impl Client for Member {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.views.push(view.clone());
        ctx.multicast_agreed(vec![self.tag]);
    }

    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.deliveries
            .push((msg.sender, msg.payload.first().copied().unwrap_or(0)));
    }
}

/// A world with `groups * size` members, members of group g tagged
/// `g as u8`, laid out contiguously: group g owns ids
/// `[g*size, (g+1)*size)`.
fn multi_world(groups: usize, size: usize) -> SimWorld {
    let mut world = SimWorld::new(testbed::lan());
    for g in 0..groups {
        for _ in 0..size {
            world.add_client(Box::new(Member {
                tag: g as u8,
                ..Member::default()
            }));
        }
    }
    for g in 0..groups {
        world.install_initial_view_in(g, (g * size..(g + 1) * size).collect());
    }
    world
}

#[test]
fn groups_are_isolated_on_a_shared_ring() {
    let (groups, size) = (4, 3);
    let mut world = multi_world(groups, size);
    world.run_until_quiescent();
    for g in 0..groups {
        let view = world.view_of(g).expect("group view installed");
        assert_eq!(view.group, g);
        assert_eq!(view.members, (g * size..(g + 1) * size).collect::<Vec<_>>());
        for m in view.members.clone() {
            let member = world.client::<Member>(m);
            // Views of other groups never reach this member.
            assert!(member.views.iter().all(|v| v.group == g));
            // Exactly the group's own multicasts arrive, nothing from
            // the other groups sharing the ring.
            assert_eq!(member.deliveries.len(), size);
            assert!(member.deliveries.iter().all(|&(_, tag)| tag == g as u8));
        }
    }
}

#[test]
fn concurrent_membership_changes_in_different_groups() {
    let (groups, size) = (3, 3);
    let mut world = multi_world(groups, size);
    // One spare client for group 1 to admit.
    let spare = world.add_client(Box::new(Member {
        tag: 1,
        ..Member::default()
    }));
    world.run_until_quiescent();

    // Concurrently: group 0 loses a member, group 1 gains one; group 2
    // stays untouched.
    world.inject_change_in(0, vec![], vec![1]);
    world.inject_change_in(1, vec![spare], vec![]);
    world.run_until_quiescent();

    let v0 = world.view_of(0).expect("group 0 view");
    assert_eq!(v0.members, vec![0, 2]);
    let v1 = world.view_of(1).expect("group 1 view");
    assert_eq!(v1.members, vec![3, 4, 5, spare]);
    let v2 = world.view_of(2).expect("group 2 view");
    assert_eq!(v2.members, vec![6, 7, 8]);

    // Group 2 saw exactly one view (its bootstrap): the other groups'
    // changes did not generate installs for it.
    assert_eq!(world.views_of(2).len(), 1);
    assert_eq!(world.views_of(0).len(), 2);
    assert_eq!(world.views_of(1).len(), 2);
    for m in [6, 7, 8] {
        assert_eq!(world.client::<Member>(m).views.len(), 1);
    }
}

#[test]
fn run_until_advances_idle_time_deterministically() {
    let mut world = multi_world(2, 3);
    world.run_until_quiescent();
    let t0 = world.now();
    // Advance through pure idle token circulation to a future instant.
    let target = t0 + Duration::from_millis(50);
    world.run_until(target);
    assert!(world.now() >= t0 + Duration::from_millis(49));
    assert!(world.now() <= target);
    // An injection at the advanced instant still works per group.
    world.inject_change_in(1, vec![], vec![4]);
    world.run_until_quiescent();
    assert_eq!(world.view_of(1).expect("view").members, vec![3, 5]);
}

#[test]
fn single_group_api_is_group_zero() {
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..3 {
        world.add_client(Box::new(Member::default()));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    assert_eq!(world.view().map(|v| v.id), world.view_of(0).map(|v| v.id));
    assert_eq!(world.view().expect("view").group, 0);
    assert_eq!(world.projected_members(), world.projected_members_of(0));
}

//! The sharded engine's contract: one shard is *exactly* the existing
//! single-ring engine, and groups on different shards are perfectly
//! isolated — a membership cascade on one ring cannot move a single
//! event on another.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, ShardedWorld, SimWorld, View};
use gkap_sim::{Duration, SimTime};

/// Records view installs and deliveries with their exact instants.
#[derive(Default)]
struct Witness {
    views: Vec<(SimTime, usize, Vec<usize>)>,
    deliveries: Vec<(SimTime, usize)>,
    send_on_view: bool,
}

impl Client for Witness {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.views
            .push((ctx.now(), view.group, view.members.clone()));
        if self.send_on_view {
            ctx.multicast_agreed(vec![7u8; 64]);
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        self.deliveries.push((ctx.now(), msg.sender));
    }
}

/// One shard must behave byte-for-byte like the plain single-ring
/// engine: same clock, same stats, same install instants.
#[test]
fn one_shard_is_the_single_ring_engine() {
    let mut plain = SimWorld::new(testbed::lan());
    let mut sharded = ShardedWorld::new(testbed::lan(), 1);
    for i in 0..6 {
        let mk = || {
            Box::new(Witness {
                send_on_view: i % 2 == 0,
                ..Witness::default()
            })
        };
        let p = plain.add_client(mk());
        let s = sharded.add_client_in(i % 2, mk());
        assert_eq!(p, s, "global ids must line up");
    }
    // Two groups interleaved over the same clients.
    plain.install_initial_view_in(0, vec![0, 2, 4]);
    plain.install_initial_view_in(1, vec![1, 3, 5]);
    sharded.install_initial_view_in(0, vec![0, 2, 4]);
    sharded.install_initial_view_in(1, vec![1, 3, 5]);
    plain.run_until_quiescent();
    sharded.run_until_quiescent();
    assert_eq!(plain.now(), sharded.now());

    let t = plain.now() + Duration::from_millis(20);
    plain.run_until(t);
    sharded.run_until(t);
    plain.inject_change_in(0, vec![], vec![2]);
    sharded.inject_change_in(0, vec![], vec![2]);
    plain.run_until_quiescent();
    sharded.run_until_quiescent();

    assert_eq!(plain.now(), sharded.now(), "clocks must agree");
    assert_eq!(
        plain.stats().token_rotations,
        sharded.stats().token_rotations
    );
    assert_eq!(
        plain.stats().agreed_messages,
        sharded.stats().agreed_messages
    );
    for c in 0..6 {
        assert_eq!(
            plain.client::<Witness>(c).views,
            sharded.client::<Witness>(c).views,
            "client {c} view installs must match"
        );
        assert_eq!(
            plain.client::<Witness>(c).deliveries,
            sharded.client::<Witness>(c).deliveries,
            "client {c} deliveries must match"
        );
    }
    // Views come back with global ids (identity here).
    let v = sharded.view_of(0).expect("group 0 keyed");
    assert_eq!(v.members, vec![0, 4]);
}

/// Builds a 2-shard world with group 0 on shard 0 and group 1 on
/// shard 1, three members each, chatty members in group 0.
fn two_shard_world() -> (ShardedWorld, Vec<usize>, Vec<usize>) {
    let mut world = ShardedWorld::new(testbed::lan(), 2);
    let mut g0 = Vec::new();
    let mut g1 = Vec::new();
    for i in 0..8 {
        let group = i % 2;
        // Group 0 members flood the ring on every install, creating
        // the in-flight traffic a shared flush condition would wait on.
        let w = Witness {
            send_on_view: group == 0,
            ..Witness::default()
        };
        let id = world.add_client_in(group, Box::new(w));
        if group == 0 {
            g0.push(id);
        } else {
            g1.push(id);
        }
    }
    world.install_initial_view_in(0, g0[..3].to_vec());
    world.install_initial_view_in(1, g1[..3].to_vec());
    world.run_until_quiescent();
    (world, g0, g1)
}

/// A membership cascade (queued changes plus message traffic) in the
/// group on shard 0 must not move group 1's install times by a single
/// nanosecond.
#[test]
fn cascade_on_one_shard_never_delays_the_other() {
    // Quiet run: only group 1 churns.
    let (mut quiet, _q0, q1) = two_shard_world();
    let t = quiet.now() + Duration::from_millis(10);
    quiet.run_until(t);
    quiet.inject_change_in(1, vec![q1[3]], vec![]);
    quiet.run_until_quiescent();
    let quiet_views = (0..4)
        .map(|k| quiet.client::<Witness>(q1[k]).views.clone())
        .collect::<Vec<_>>();

    // Stormy run: identical group 1 churn, plus a cascade in group 0
    // injected at the same instant.
    let (mut storm, s0, s1) = two_shard_world();
    let t = storm.now() + Duration::from_millis(10);
    storm.run_until(t);
    storm.inject_change_in(1, vec![s1[3]], vec![]);
    storm.inject_change_in(0, vec![s0[3]], vec![]);
    storm.inject_change_in(0, vec![], vec![s0[0]]);
    storm.inject_change_in(0, vec![], vec![s0[1]]);
    storm.run_until_quiescent();
    let storm_views = (0..4)
        .map(|k| storm.client::<Witness>(s1[k]).views.clone())
        .collect::<Vec<_>>();

    assert_eq!(
        quiet_views, storm_views,
        "group 1's installs must be independent of group 0's cascade"
    );
    // The cascade really ran: group 0 installed three more views.
    assert_eq!(storm.views_of(0).len(), 4);
    assert_eq!(storm.views_of(1).len(), 2);
    // And the shards expose independent frontiers merged conservatively.
    assert!(storm.now() >= storm.shard(1).now());
    assert!(storm.quiescent());
}

//! Stress tests: heavy traffic through the token ring, mixed service
//! levels, and long-running membership churn.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, Service, SimWorld, View};

#[derive(Default)]
struct Firehose {
    burst: usize,
    agreed_got: usize,
    fifo_got: usize,
    causal_got: usize,
}

impl Client for Firehose {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        for i in 0..self.burst {
            ctx.multicast_agreed(vec![(i % 256) as u8]);
            ctx.multicast_fifo(vec![(i % 256) as u8]);
            ctx.multicast_causal(vec![(i % 256) as u8]);
        }
    }

    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        match msg.service {
            Service::Agreed => self.agreed_got += 1,
            Service::Fifo => self.fifo_got += 1,
            Service::Causal => self.causal_got += 1,
        }
    }
}

#[test]
fn thousand_message_burst_all_delivered() {
    // 10 members × 40 messages × 3 services = 1200 sends; flow control
    // (20/visit) forces several rotations.
    let n = 10;
    let burst = 40;
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..n {
        world.add_client(Box::new(Firehose {
            burst,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..n {
        let c = world.client::<Firehose>(i);
        assert_eq!(c.agreed_got, n * burst, "member {i} agreed");
        // FIFO multicasts deliver to every view member including the
        // sender.
        assert_eq!(c.fifo_got, n * burst, "member {i} fifo");
        assert_eq!(c.causal_got, n * burst, "member {i} causal");
    }
    assert_eq!(world.stats().agreed_messages, (n * burst) as u64);
}

#[test]
fn tight_flow_control_still_delivers_everything() {
    let mut cfg = testbed::lan();
    cfg.flow_control_max_msgs = 1; // one message per token visit
    let mut world = SimWorld::new(cfg);
    for _ in 0..6 {
        world.add_client(Box::new(Firehose {
            burst: 25,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..6 {
        assert_eq!(world.client::<Firehose>(i).agreed_got, 150, "member {i}");
    }
    // Rotations must dominate: at 1 msg/visit/daemon, 150 messages from
    // 6 members on 6 machines need at least 25 rotations.
    assert!(world.stats().token_rotations >= 25);
}

#[test]
fn long_membership_churn_remains_consistent() {
    // 30 membership changes in sequence; views stay consistent and the
    // engine never wedges.
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..40 {
        world.add_client(Box::new(Firehose::default()));
    }
    world.install_initial_view_of((0..10).collect());
    world.run_until_quiescent();
    let mut present: Vec<usize> = (0..10).collect();
    let mut next = 10;
    for round in 0..30 {
        if round % 3 == 2 && present.len() > 3 {
            let leaver = present[round % present.len()];
            present.retain(|&c| c != leaver);
            world.inject_leave(leaver);
        } else if next < 40 {
            present.push(next);
            world.inject_join(next);
            next += 1;
        }
        world.run_until_quiescent();
        let view = world.view().unwrap();
        assert_eq!(view.members, present, "round {round}");
    }
    assert!(world.stats().views_installed >= 30);
}

#[test]
fn wan_burst_respects_site_fairness() {
    // Every daemon gets its token slot: a busy JHU cluster cannot
    // starve the UCI/ICU members.
    let mut world = SimWorld::new(testbed::wan());
    for _ in 0..13 {
        world.add_client(Box::new(Firehose {
            burst: 10,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    for i in 0..13 {
        assert_eq!(world.client::<Firehose>(i).agreed_got, 130, "member {i}");
    }
}

//! The observability trace: sequencing, deliveries and view installs
//! appear in causally sensible order with monotone timestamps.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, Service, SimWorld, TraceEvent, View};

struct Echo;
impl Client for Echo {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        if view.members.first() == Some(&ctx.id()) {
            ctx.multicast_agreed(vec![1]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
}

#[test]
fn trace_records_lifecycle_in_order() {
    let mut world = SimWorld::new(testbed::lan());
    world.enable_trace();
    for _ in 0..6 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view_of((0..5).collect());
    world.run_until_quiescent();
    world.inject_join(5);
    world.run_until_quiescent();

    let trace = world.trace();
    assert!(!trace.is_empty(), "trace must record something");

    // Timestamps are monotone.
    let mut last = gkap_sim::SimTime::ZERO;
    for ev in trace {
        let at = match ev {
            TraceEvent::Sequenced { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::ViewInstalled { at, .. } => *at,
        };
        assert!(at >= last, "trace timestamps must be monotone");
        last = at;
    }

    // Two Agreed messages were sequenced (member 0 sends on both its
    // views) and the first was delivered to all 5 initial members.
    let sequenced = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sequenced { .. }))
        .count();
    assert_eq!(sequenced, 2);
    let delivered = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Delivered { service: Service::Agreed, .. }))
        .count();
    assert_eq!(delivered, 5 + 6, "first view: 5 receivers; second: 6");

    // Sequencing precedes the first delivery.
    let seq_pos = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::Sequenced { .. }))
        .unwrap();
    let first_del = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::Delivered { service: Service::Agreed, .. }))
        .unwrap();
    assert!(seq_pos < first_del);

    // The join's membership change installs at all 13 daemons (the
    // free initial bootstrap does not go through daemon installs).
    let installs = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::ViewInstalled { .. }))
        .count();
    assert_eq!(installs, 13, "the join view installs at every daemon");
}

#[test]
fn trace_disabled_by_default() {
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..3 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    assert!(world.trace().is_empty());
}

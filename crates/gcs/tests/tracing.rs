//! The observability trace: sequencing, deliveries, view installs and
//! retransmissions appear in causally sensible order with monotone
//! timestamps — on the LAN and WAN testbeds, with and without loss.

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, Service, SimWorld, TraceEvent, View};

struct Echo;
impl Client for Echo {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        if view.members.first() == Some(&ctx.id()) {
            ctx.multicast_agreed(vec![1]);
        }
    }
    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
}

fn event_time(ev: &TraceEvent) -> gkap_sim::SimTime {
    match ev {
        TraceEvent::Sequenced { at, .. }
        | TraceEvent::Delivered { at, .. }
        | TraceEvent::ViewInstalled { at, .. }
        | TraceEvent::Retransmit { at, .. }
        | TraceEvent::FecRepaired { at, .. } => *at,
    }
}

/// Every `Sequenced` seq must reach at least one client as a
/// `Delivered` (total order means sequenced traffic cannot vanish).
fn assert_sequenced_all_delivered(trace: &[TraceEvent]) {
    let sequenced: Vec<u64> = trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Sequenced { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    let delivered_agreed = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    service: Service::Agreed,
                    ..
                }
            )
        })
        .count();
    assert!(
        delivered_agreed >= sequenced.len(),
        "each of the {} sequenced messages must be delivered at least once \
         (saw {delivered_agreed} agreed deliveries)",
        sequenced.len()
    );
    // Per-sequence pairing: the k-th sequenced message must have a
    // delivery after its sequencing point.
    for &seq in &sequenced {
        let seq_pos = trace
            .iter()
            .position(|e| matches!(e, TraceEvent::Sequenced { seq: s, .. } if *s == seq))
            .expect("sequenced event present");
        let has_later_delivery = trace[seq_pos..].iter().any(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    service: Service::Agreed,
                    ..
                }
            )
        });
        assert!(
            has_later_delivery,
            "seq {seq} sequenced but never delivered after"
        );
    }
}

#[test]
fn trace_records_lifecycle_in_order() {
    let mut world = SimWorld::new(testbed::lan());
    world.enable_trace();
    for _ in 0..6 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view_of((0..5).collect());
    world.run_until_quiescent();
    world.inject_join(5);
    world.run_until_quiescent();

    let trace = world.trace();
    assert!(!trace.is_empty(), "trace must record something");

    // Timestamps are monotone.
    let mut last = gkap_sim::SimTime::ZERO;
    for ev in &trace {
        let at = event_time(ev);
        assert!(at >= last, "trace timestamps must be monotone");
        last = at;
    }

    // Two Agreed messages were sequenced (member 0 sends on both its
    // views) and the first was delivered to all 5 initial members.
    let sequenced = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sequenced { .. }))
        .count();
    assert_eq!(sequenced, 2);
    let delivered = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    service: Service::Agreed,
                    ..
                }
            )
        })
        .count();
    assert_eq!(delivered, 5 + 6, "first view: 5 receivers; second: 6");

    // Sequencing precedes the first delivery.
    let seq_pos = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::Sequenced { .. }))
        .unwrap();
    let first_del = trace
        .iter()
        .position(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    service: Service::Agreed,
                    ..
                }
            )
        })
        .unwrap();
    assert!(seq_pos < first_del);

    // The join's membership change installs at all 13 daemons (the
    // free initial bootstrap does not go through daemon installs).
    let installs = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::ViewInstalled { .. }))
        .count();
    assert_eq!(installs, 13, "the join view installs at every daemon");

    // Reliable links: no retransmissions in the trace.
    assert!(
        !trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Retransmit { .. })),
        "reliable LAN must not retransmit"
    );
}

#[test]
fn trace_disabled_by_default() {
    let mut world = SimWorld::new(testbed::lan());
    for _ in 0..3 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    assert!(world.trace().is_empty());
    assert!(!world.telemetry().is_enabled());
}

#[test]
fn trace_complete_on_wan_testbed() {
    let mut world = SimWorld::new(testbed::wan());
    world.enable_trace();
    for _ in 0..7 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view_of((0..6).collect());
    world.run_until_quiescent();
    world.inject_join(6);
    world.run_until_quiescent();

    let trace = world.trace();
    assert!(!trace.is_empty());

    // Monotone timestamps on the WAN too.
    let mut last = gkap_sim::SimTime::ZERO;
    for ev in &trace {
        let at = event_time(ev);
        assert!(at >= last, "trace timestamps must be monotone");
        last = at;
    }

    assert_sequenced_all_delivered(&trace);

    // The join installs at every WAN daemon.
    let wan_daemons = testbed::wan().topology.machine_count();
    let installs = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::ViewInstalled { .. }))
        .count();
    assert_eq!(installs, wan_daemons, "join view installs at every daemon");

    // WAN delivery latency is in the hundreds of milliseconds (the
    // paper's ≈310 ms Agreed cost): first delivery well after t=0.
    let first_delivery = trace
        .iter()
        .find(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    service: Service::Agreed,
                    ..
                }
            )
        })
        .map(event_time)
        .expect("at least one delivery");
    assert!(
        first_delivery.as_millis_f64() > 50.0,
        "WAN Agreed delivery cannot be LAN-fast, got {first_delivery}"
    );
}

#[test]
fn lossy_links_produce_retransmit_events_and_complete_delivery() {
    let mut cfg = testbed::lan();
    cfg.loss_rate = 0.30;
    cfg.loss_seed = 7;
    let mut world = SimWorld::new(cfg);
    world.enable_trace();
    for _ in 0..8 {
        world.add_client(Box::new(Echo));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    // Several extra membership changes → more Agreed traffic → more
    // opportunities for loss.
    world.inject_leave(7);
    world.run_until_quiescent();
    world.inject_join(7);
    world.run_until_quiescent();

    let (lost, retransmitted) = {
        let stats = world.stats();
        (stats.messages_lost, stats.retransmissions)
    };
    assert!(lost > 0, "30% loss must lose something");
    assert!(retransmitted > 0, "losses must be recovered");

    let trace = world.trace();
    let retransmits = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Retransmit { .. }))
        .count() as u64;
    assert_eq!(
        retransmits, retransmitted,
        "every retransmission must appear as a Retransmit trace event"
    );

    // Despite loss, the total-order pipeline completed: every sequenced
    // message was eventually delivered somewhere.
    assert_sequenced_all_delivered(&trace);

    // Telemetry counters agree with the trace-level view.
    assert_eq!(world.telemetry().counter("gcs/retransmit"), retransmits);
    assert_eq!(
        world.telemetry().counter("gcs/sequenced"),
        trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sequenced { .. }))
            .count() as u64
    );
}

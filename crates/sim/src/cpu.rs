//! Multi-core CPU contention model.
//!
//! The paper's testbed ran several group-member processes per
//! dual-processor machine ("more than one process can be running on a
//! single machine (which is frequent in many collaborative
//! applications)", §6.1.1). When every member computes at once — as in
//! BD — members sharing a machine serialize, which the paper identifies
//! as the cause of BD's cost doubling at every multiple of 13 members
//! and of the visible knee at 26 (both CPUs occupied).
//!
//! [`CpuScheduler`] models exactly that: a fixed number of cores, FCFS,
//! with each compute request occupying the earliest-available core.

use crate::time::{Duration, SimTime};

/// Outcome of one scheduled compute request: when it started executing
/// (after any queueing) and when it completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuRun {
    /// Execution start (`>= ready`; later when all cores were busy).
    pub begin: SimTime,
    /// Completion time.
    pub end: SimTime,
}

/// FCFS scheduler for one machine with a fixed number of cores.
///
/// # Example
///
/// ```
/// use gkap_sim::{CpuScheduler, Duration, SimTime};
/// let mut cpu = CpuScheduler::new(2);
/// let t0 = SimTime::ZERO;
/// // Two jobs run in parallel on the two cores…
/// assert_eq!(cpu.run(t0, Duration::from_millis(10)).as_millis_f64(), 10.0);
/// assert_eq!(cpu.run(t0, Duration::from_millis(10)).as_millis_f64(), 10.0);
/// // …the third waits for a free core.
/// assert_eq!(cpu.run(t0, Duration::from_millis(10)).as_millis_f64(), 20.0);
/// ```
#[derive(Clone, Debug)]
pub struct CpuScheduler {
    cores: Vec<SimTime>,
    busy_total: Duration,
}

impl CpuScheduler {
    /// Creates a scheduler with `cores` processors.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        CpuScheduler {
            cores: vec![SimTime::ZERO; cores],
            busy_total: Duration::ZERO,
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Requests `work` of CPU time starting no earlier than `ready`.
    /// Returns the completion time. Zero-duration work completes
    /// immediately (at `ready` or when a core frees up — we treat it as
    /// free and return `ready`).
    pub fn run(&mut self, ready: SimTime, work: Duration) -> SimTime {
        self.run_detailed(ready, work).end
    }

    /// Like [`run`](Self::run), but also reports when execution began —
    /// the gap between `ready` and `begin` is the scheduler queue wait,
    /// which the telemetry layer attributes to CPU contention.
    pub fn run_detailed(&mut self, ready: SimTime, work: Duration) -> CpuRun {
        if work == Duration::ZERO {
            return CpuRun {
                begin: ready,
                end: ready,
            };
        }
        // Earliest-available core (FCFS).
        let core = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one core");
        let begin = self.cores[core].max(ready);
        let end = begin + work;
        self.cores[core] = end;
        self.busy_total += work;
        CpuRun { begin, end }
    }

    /// Total CPU time consumed so far (across all cores).
    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    /// The earliest instant at which some core is idle.
    pub fn next_idle(&self) -> SimTime {
        self.cores.iter().copied().min().expect("at least one core")
    }

    /// Resets all cores to idle-at-zero (between experiment repetitions).
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            *c = SimTime::ZERO;
        }
        self.busy_total = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn parallel_until_cores_exhausted() {
        let mut cpu = CpuScheduler::new(2);
        let t0 = SimTime::ZERO;
        let ends: Vec<f64> = (0..4)
            .map(|_| cpu.run(t0, ms(10)).as_millis_f64())
            .collect();
        assert_eq!(ends, vec![10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn single_core_serializes() {
        let mut cpu = CpuScheduler::new(1);
        let t0 = SimTime::ZERO;
        assert_eq!(cpu.run(t0, ms(5)).as_millis_f64(), 5.0);
        assert_eq!(cpu.run(t0, ms(5)).as_millis_f64(), 10.0);
        assert_eq!(cpu.busy_total(), ms(10));
    }

    #[test]
    fn ready_time_respected() {
        let mut cpu = CpuScheduler::new(1);
        let late = SimTime::ZERO + ms(100);
        assert_eq!(cpu.run(late, ms(5)), late + ms(5));
        // A job ready earlier than the core frees up waits for the core.
        assert_eq!(cpu.run(SimTime::ZERO, ms(1)), late + ms(6));
    }

    #[test]
    fn zero_work_is_free() {
        let mut cpu = CpuScheduler::new(1);
        cpu.run(SimTime::ZERO, ms(50));
        let ready = SimTime::ZERO + ms(1);
        assert_eq!(cpu.run(ready, Duration::ZERO), ready);
        assert_eq!(cpu.busy_total(), ms(50));
    }

    #[test]
    fn next_idle_and_reset() {
        let mut cpu = CpuScheduler::new(2);
        cpu.run(SimTime::ZERO, ms(4));
        assert_eq!(cpu.next_idle(), SimTime::ZERO);
        cpu.run(SimTime::ZERO, ms(6));
        assert_eq!(cpu.next_idle(), SimTime::ZERO + ms(4));
        cpu.reset();
        assert_eq!(cpu.next_idle(), SimTime::ZERO);
        assert_eq!(cpu.busy_total(), Duration::ZERO);
    }

    #[test]
    fn run_detailed_reports_queue_wait() {
        let mut cpu = CpuScheduler::new(1);
        let first = cpu.run_detailed(SimTime::ZERO, ms(10));
        assert_eq!(first.begin, SimTime::ZERO);
        assert_eq!(first.end, SimTime::ZERO + ms(10));
        // Second job is ready at t=2 but queues behind the first.
        let second = cpu.run_detailed(SimTime::ZERO + ms(2), ms(3));
        assert_eq!(second.begin, SimTime::ZERO + ms(10));
        assert_eq!(second.end, SimTime::ZERO + ms(13));
        assert_eq!(second.begin.since(SimTime::ZERO + ms(2)), ms(8));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        CpuScheduler::new(0);
    }

    #[test]
    fn contention_doubles_completion_like_bd_on_shared_machines() {
        // 4 members on a 2-core machine each needing 10ms at once: the
        // makespan is 2x a single member's cost — the paper's BD effect.
        let mut cpu = CpuScheduler::new(2);
        let t0 = SimTime::ZERO;
        let makespan = (0..4).map(|_| cpu.run(t0, ms(10))).max().unwrap();
        assert_eq!(makespan.as_millis_f64(), 20.0);
    }
}

//! Discrete-event simulation core for the Secure Spread reproduction.
//!
//! The paper measured wall-clock time on a 13-machine cluster and a
//! three-site WAN. This crate supplies the machinery to reproduce those
//! measurements deterministically in *virtual time*:
//!
//! * [`SimTime`] / [`Duration`] — nanosecond-resolution virtual clock
//!   values (integers, so runs are exactly reproducible).
//! * [`EventQueue`] — the classic discrete-event loop: schedule events
//!   in the future, pop them in time order.
//! * [`CpuScheduler`] — per-machine multi-core FCFS processor model.
//!   The paper's testbed machines were dual-processor PCs, and several
//!   group members share one machine; CPU contention is what makes the
//!   BD protocol's cost "roughly double as the group size grows in
//!   increments of 13" (§6.1.3). This model reproduces that effect.
//! * [`VtFrontier`] — the conservative merge (max) of per-shard
//!   virtual clocks when a run is partitioned over independent
//!   shards.
//! * [`stats`] — summary statistics and series containers for the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use gkap_sim::{Duration, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Duration::from_millis(5), "world");
//! q.schedule(Duration::from_millis(1), "hello");
//! let (t1, e1) = q.pop().unwrap();
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((e1, e2), ("hello", "world"));
//! assert!(t1 < t2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod queue;
pub mod stats;
mod time;

pub use cpu::{CpuRun, CpuScheduler};
pub use queue::EventQueue;
pub use time::{Duration, SimTime, VtFrontier};

pub use gkap_bignum::{RandomSource, SplitMix64};

//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// A time-ordered event queue with a monotone virtual clock.
///
/// Events scheduled for the same instant are delivered in scheduling
/// order (FIFO tie-break), which keeps simulations deterministic.
///
/// # Example
///
/// ```
/// use gkap_sim::{Duration, EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(Duration::from_millis(3), 'b');
/// q.schedule(Duration::from_millis(3), 'c'); // same instant: FIFO
/// q.schedule(Duration::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at:?} < {:?})",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap returned a past event");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Duration::from_millis(10), 1);
        q.schedule(Duration::from_millis(5), 2);
        q.schedule(Duration::from_millis(20), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Duration::from_millis(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Duration::from_millis(5), ());
        q.schedule(Duration::from_millis(3), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        // Scheduling relative to the advanced clock.
        q.schedule(Duration::from_millis(1), ());
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert!(t2 <= t3);
        assert_eq!(t2, SimTime::ZERO + Duration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Duration::from_millis(5), ());
        q.pop();
        q.schedule_at(SimTime::ZERO, ());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Duration::from_millis(2), ());
        assert_eq!(
            q.peek_time(),
            Some(SimTime::ZERO + Duration::from_millis(2))
        );
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}

//! Statistics containers for the experiment harness: per-point summary
//! statistics and (x, y) series matching the paper's figures.

use serde::{Deserialize, Serialize};

/// Online accumulator for summary statistics (Welford's algorithm).
///
/// # Example
///
/// ```
/// use gkap_sim::stats::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] { s.add(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must agree with [`Summary::new`]: a derived default would
/// set `min = max = 0.0`, so an empty accumulator built via `Default`
/// would report a bogus min/max of 0.0 once the first sample above zero
/// arrives (`0.0.min(v)` sticks at 0.0).
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (`0.0` for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-resolution log-bucketed histogram for latency
/// distributions (the paper reports means; percentiles expose the
/// tails the token ring produces).
///
/// Buckets are half-open intervals `[b_i, b_{i+1})` with
/// exponentially growing width: bucket `i` covers
/// `base * growth^i .. base * growth^{i+1}`.
///
/// # Example
///
/// ```
/// use gkap_sim::stats::Histogram;
/// let mut h = Histogram::new(0.1, 1.5, 64);
/// for v in [1.0, 2.0, 3.0, 10.0] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 1.0 && h.quantile(0.5) <= 4.0);
/// assert!(h.quantile(1.0) >= 9.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    base: f64,
    growth: f64,
    buckets: Vec<u64>,
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` log-spaced buckets starting
    /// at `base` with the given `growth` factor.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0`, `growth > 1` and `buckets > 0`.
    pub fn new(base: f64, growth: f64, buckets: usize) -> Self {
        assert!(
            base > 0.0 && growth > 1.0 && buckets > 0,
            "invalid histogram shape"
        );
        Histogram {
            base,
            growth,
            buckets: vec![0; buckets],
            underflow: 0,
            count: 0,
        }
    }

    /// Records a sample (values below `base` land in the underflow
    /// bucket; values beyond the top land in the last bucket).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() || v < self.base {
            self.underflow += 1;
            return;
        }
        let idx = ((v / self.base).ln() / self.growth.ln()).floor() as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile `q in [0, 1]` (upper bound of the bucket
    /// holding the q-th sample). Returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return self.base;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.base * self.growth.powi(i as i32 + 1);
            }
        }
        self.base * self.growth.powi(self.buckets.len() as i32)
    }

    /// Merges another histogram (same shape) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "histogram shape");
        assert!(
            (self.base - other.base).abs() < 1e-12 && (self.growth - other.growth).abs() < 1e-12
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.count += other.count;
    }
}

/// One point of a figure series: x (group size), y-summary (elapsed ms).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// The x coordinate (group size in every figure of the paper).
    pub x: f64,
    /// Statistics of the measured quantity at this x.
    pub summary: Summary,
}

/// A named series — one curve of a paper figure (e.g. "TGDH").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Series {
    /// Curve label.
    pub name: String,
    /// Points in ascending x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, summary: Summary) {
        self.points.push(Point { x, summary });
    }

    /// Mean y at the given x, if present.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.summary.mean())
    }

    /// Renders the series as CSV lines `name,x,mean,stddev,min,max`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4}\n",
                self.name,
                p.x,
                p.summary.mean(),
                p.summary.stddev(),
                p.summary.min(),
                p.summary.max()
            ));
        }
        out
    }
}

/// A figure: several series sharing an x axis (matches one plot of the
/// paper).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. "Join - DH 512 bits (LAN)").
    pub title: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Full CSV rendering with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,mean_ms,stddev_ms,min_ms,max_ms\n");
        for s in &self.series {
            out.push_str(&s.to_csv());
        }
        out
    }

    /// Renders an aligned ASCII table (x down the rows, one column per
    /// series) — the harness's human-readable output.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = format!("# {}\n", self.title);
        out.push_str(&format!("{:>6}", "n"));
        for s in &self.series {
            out.push_str(&format!("{:>14}", s.name));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x:>6}"));
            for s in &self.series {
                match s.mean_at(x) {
                    Some(m) => out.push_str(&format!("{m:>14.2}")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.13809).abs() < 1e-4);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn default_matches_new_sentinels() {
        // Regression: a derived Default (min = max = 0.0) corrupted the
        // first sample's min/max when constructed via Default.
        let mut d = Summary::default();
        d.add(5.0);
        assert_eq!(d.min(), 5.0, "min must come from the sample, not 0.0");
        assert_eq!(d.max(), 5.0);
        let mut n = Summary::new();
        n.add(5.0);
        assert_eq!(d.min(), n.min());
        assert_eq!(d.max(), n.max());
    }

    #[test]
    fn merge_matches_bulk() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut bulk = Summary::new();
        for &v in &data {
            bulk.add(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &v in &data[..37] {
            a.add(v);
        }
        for &v in &data[37..] {
            b.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.stddev() - bulk.stddev()).abs() < 1e-9);
        // Merge with empty is identity.
        let snapshot = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), snapshot);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::new(1.0, 2.0, 20);
        for v in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert!(h.quantile(0.0) >= 1.0);
        let p50 = h.quantile(0.5);
        assert!((4.0..=16.0).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0) >= 128.0);
    }

    #[test]
    fn histogram_underflow_and_overflow() {
        let mut h = Histogram::new(10.0, 2.0, 4);
        h.record(0.5); // underflow
        h.record(1e9); // overflow clamps to last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 10.0, "underflow reports the base");
        assert!(h.quantile(1.0) >= 10.0 * 2f64.powi(4));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new(1.0, 2.0, 8);
        let mut b = Histogram::new(1.0, 2.0, 8);
        a.record(2.0);
        b.record(64.0);
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0) >= 64.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram shape")]
    fn histogram_rejects_bad_shape() {
        Histogram::new(0.0, 2.0, 8);
    }

    #[test]
    fn series_lookup_and_csv() {
        let mut s = Series::new("TGDH");
        let mut sm = Summary::new();
        sm.add(10.0);
        sm.add(12.0);
        s.push(5.0, sm);
        assert_eq!(s.mean_at(5.0), Some(11.0));
        assert_eq!(s.mean_at(6.0), None);
        let csv = s.to_csv();
        assert!(csv.starts_with("TGDH,5,11.0000"));
    }

    #[test]
    fn figure_table_renders_all_series() {
        let mut fig = Figure::new("Join - test");
        for name in ["BD", "CKD"] {
            let mut s = Series::new(name);
            let mut sm = Summary::new();
            sm.add(1.0);
            s.push(2.0, sm.clone());
            if name == "BD" {
                s.push(3.0, sm);
            }
            fig.push(s);
        }
        let table = fig.to_table();
        assert!(table.contains("BD"));
        assert!(table.contains("CKD"));
        assert!(table.contains('-'), "missing point rendered as dash");
        assert!(fig.series_named("BD").is_some());
        assert!(fig.series_named("STR").is_none());
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,"));
    }
}

//! Virtual time: instants and durations with nanosecond resolution.
//!
//! Integer nanoseconds keep simulations exactly reproducible across
//! platforms (no floating-point accumulation drift), while convenience
//! accessors expose milliseconds — the unit of every figure in the
//! paper.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Duration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (the paper's unit), as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a simulation causality
    /// bug).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Constructs from fractional milliseconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be >= 0, got {ms}"
        );
        Duration((ms * 1_000_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

/// A conservative virtual-time frontier over independent shards.
///
/// Each shard of a partitioned simulation advances its own clock;
/// the frontier of the whole run is the *latest* per-shard clock —
/// conservative because shards share no events, so no shard can
/// schedule into another's past. Folding frontiers is a plain `max`,
/// which is associative, commutative, and idempotent: per-shard
/// frontiers can be merged in any order (or repeatedly) and the
/// result is the same instant, the property the merge proptests pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VtFrontier(SimTime);

impl VtFrontier {
    /// The frontier of a run that has not advanced: simulation start.
    pub const ZERO: VtFrontier = VtFrontier(SimTime::ZERO);

    /// A frontier at a known instant.
    pub const fn at(t: SimTime) -> Self {
        VtFrontier(t)
    }

    /// The frontier instant.
    pub const fn time(self) -> SimTime {
        self.0
    }

    /// Advances to `t` if later (a shard reporting its clock).
    pub fn advance(&mut self, t: SimTime) {
        self.0 = self.0.max(t);
    }

    /// Folds another frontier in: the later instant wins.
    pub fn merge(&mut self, other: VtFrontier) {
        self.0 = self.0.max(other.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;

    /// Saturating multiplication by an integer count.
    fn mul(self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub for Duration {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, d: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(d.0)
                .expect("Duration subtraction underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Duration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Duration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Duration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(Duration::from_millis_f64(0.0), Duration::ZERO);
        assert!((Duration::from_millis(3).as_millis_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_duration_panics() {
        Duration::from_millis_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        let later = t + Duration::from_millis(5);
        assert_eq!(later.since(t), Duration::from_millis(5));
        assert_eq!(t.max(later), later);
        let mut acc = SimTime::ZERO;
        acc += Duration::from_millis(1);
        assert_eq!(acc.as_millis_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_rejects_reversed_order() {
        SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn duration_ops() {
        let d = Duration::from_millis(4) - Duration::from_millis(1);
        assert_eq!(d, Duration::from_millis(3));
        assert_eq!(Duration::from_millis(2) * 10, Duration::from_millis(20));
        let mut acc = Duration::ZERO;
        acc += Duration::from_millis(7);
        assert_eq!(acc, Duration::from_millis(7));
    }

    #[test]
    fn display_in_milliseconds() {
        assert_eq!(format!("{}", Duration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{:?}", SimTime::from_nanos(2_000_000)), "t=2.000ms");
    }
}

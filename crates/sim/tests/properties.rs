//! Property-based tests for the discrete-event core.

use gkap_sim::stats::Summary;
use gkap_sim::{CpuScheduler, Duration, EventQueue, SimTime, VtFrontier};
use proptest::prelude::*;

proptest! {
    /// Folding per-shard virtual-time frontiers is a `max`, so any
    /// merge order — or grouping, or repetition — yields the same
    /// instant. This is what lets a sharded run report one conservative
    /// clock no matter how its shards were scheduled onto workers.
    #[test]
    fn frontier_merge_is_associative_commutative_idempotent(
        ts in proptest::collection::vec(0u64..u64::MAX / 2, 1..50),
        split in 0usize..50,
    ) {
        let frontiers: Vec<VtFrontier> = ts
            .iter()
            .map(|&n| VtFrontier::at(SimTime::from_nanos(n)))
            .collect();
        // Left fold in order.
        let mut fwd = VtFrontier::ZERO;
        for f in &frontiers {
            fwd.merge(*f);
        }
        // Reverse order.
        let mut rev = VtFrontier::ZERO;
        for f in frontiers.iter().rev() {
            rev.merge(*f);
        }
        prop_assert_eq!(fwd, rev, "merge order must not matter");
        // Arbitrary grouping: fold two halves separately, then merge.
        let mid = split % frontiers.len();
        let (a, b) = frontiers.split_at(mid);
        let mut left = VtFrontier::ZERO;
        for f in a {
            left.merge(*f);
        }
        let mut right = VtFrontier::ZERO;
        for f in b {
            right.merge(*f);
        }
        left.merge(right);
        prop_assert_eq!(fwd, left, "merge grouping must not matter");
        // Idempotent: merging the result again changes nothing.
        let before = fwd;
        fwd.merge(before);
        prop_assert_eq!(fwd, before);
        // And the frontier is exactly the max shard clock.
        prop_assert_eq!(
            fwd.time().as_nanos(),
            ts.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time(delays in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule(Duration::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
        prop_assert_eq!(q.delivered(), delays.len() as u64);
    }

    #[test]
    fn event_queue_equal_times_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Duration::from_millis(7), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cpu_scheduler_conserves_work(jobs in proptest::collection::vec(1u64..500, 1..60),
                                    cores in 1usize..5) {
        let mut cpu = CpuScheduler::new(cores);
        let total: u64 = jobs.iter().sum();
        let mut makespan = SimTime::ZERO;
        for &j in &jobs {
            let end = cpu.run(SimTime::ZERO, Duration::from_micros(j));
            makespan = makespan.max(end);
        }
        prop_assert_eq!(cpu.busy_total(), Duration::from_micros(total));
        // Makespan bounds: work/cores <= makespan <= work.
        let lower = total / cores as u64;
        prop_assert!(makespan.as_nanos() >= lower * 1_000);
        prop_assert!(makespan.as_nanos() <= total * 1_000);
        // Longest job is a lower bound too.
        let longest = *jobs.iter().max().unwrap();
        prop_assert!(makespan.as_nanos() >= longest * 1_000);
    }

    #[test]
    fn cpu_scheduler_respects_ready_times(ready in proptest::collection::vec(0u64..1000, 1..40)) {
        let mut cpu = CpuScheduler::new(2);
        for &r in &ready {
            let start = SimTime::from_nanos(r * 1_000);
            let end = cpu.run(start, Duration::from_micros(10));
            prop_assert!(end >= start + Duration::from_micros(10));
        }
    }

    #[test]
    fn summary_mean_within_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        for &v in &values {
            s.add(v);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert!(s.stddev() >= 0.0);
    }

    #[test]
    fn summary_merge_equivalent_to_bulk(a in proptest::collection::vec(-1e4f64..1e4, 0..100),
                                        b in proptest::collection::vec(-1e4f64..1e4, 0..100)) {
        let mut bulk = Summary::new();
        for v in a.iter().chain(b.iter()) {
            bulk.add(*v);
        }
        let mut left = Summary::new();
        for &v in &a {
            left.add(v);
        }
        let mut right = Summary::new();
        for &v in &b {
            right.add(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), bulk.count());
        prop_assert!((left.mean() - bulk.mean()).abs() < 1e-6);
        prop_assert!((left.stddev() - bulk.stddev()).abs() < 1e-6);
    }

    #[test]
    fn duration_roundtrips_millis(ms in 0u64..1_000_000) {
        let d = Duration::from_millis(ms);
        prop_assert_eq!(Duration::from_millis_f64(d.as_millis_f64()), d);
    }
}

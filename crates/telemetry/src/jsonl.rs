//! JSONL rendering of captured telemetry.
//!
//! One JSON object per line, hand-rendered (every value is a number,
//! an identifier-safe string, or a fixed label — no escaping needed).
//!
//! Event lines:
//!
//! ```json
//! {"at_ms":12.345,"dur_ms":0.25,"actor":"client:3","kind":"crypto_op","op":"exp","bits":512}
//! ```
//!
//! Common fields: `at_ms`/`dur_ms` (virtual milliseconds), `actor`
//! (`world`, `client:N`, `daemon:N`, `machine:N`), `kind` (see the
//! crate-level taxonomy table). Kind-specific fields follow.
//!
//! Metric lines (emitted after events by [`render_metrics`]):
//!
//! ```json
//! {"metric":"counter","name":"crypto/exp","value":816}
//! {"metric":"histogram","name":"cpu/busy_ms","count":120,"p50":1.6,"p90":4.1,"p99":6.5}
//! ```

use crate::{Actor, Event, EventKind, MetricsRegistry, Recorder};
use std::fmt::Write as _;

fn actor_label(a: Actor) -> String {
    match a {
        Actor::World => "world".to_string(),
        Actor::Client(i) => format!("client:{i}"),
        Actor::Daemon(i) => format!("daemon:{i}"),
        Actor::Machine(i) => format!("machine:{i}"),
    }
}

/// Renders one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    write!(
        s,
        "{{\"at_ms\":{:.6},\"dur_ms\":{:.6},\"actor\":\"{}\",\"kind\":\"{}\"",
        ev.at.as_millis_f64(),
        ev.dur.as_millis_f64(),
        actor_label(ev.actor),
        ev.kind.name()
    )
    .expect("write to String");
    match &ev.kind {
        EventKind::MembershipEvent { action, group_size } => {
            write!(s, ",\"action\":\"{action}\",\"group_size\":{group_size}")
        }
        EventKind::ProtocolRound { protocol, round } => {
            write!(s, ",\"protocol\":\"{protocol}\",\"round\":{round}")
        }
        EventKind::CryptoOp { op, bits } => {
            write!(s, ",\"op\":\"{}\",\"bits\":{bits}", op.as_str())
        }
        EventKind::TokenRotation { rotation } => write!(s, ",\"rotation\":{rotation}"),
        EventKind::Retransmit { seq } => write!(s, ",\"seq\":{seq}"),
        EventKind::FecRepair { seq } => write!(s, ",\"seq\":{seq}"),
        EventKind::Sequenced { seq, sender } => {
            write!(s, ",\"seq\":{seq},\"sender\":{sender}")
        }
        EventKind::Delivered { sender, service } => {
            write!(s, ",\"sender\":{sender},\"service\":\"{service}\"")
        }
        EventKind::ViewInstalled { view_id } => write!(s, ",\"view_id\":{view_id}"),
        EventKind::HandlerSpan { wait } => {
            write!(s, ",\"wait_ms\":{:.6}", wait.as_millis_f64())
        }
        EventKind::MessageSend { class } => write!(s, ",\"class\":\"{}\"", class.as_str()),
        EventKind::Fault { action, target } => {
            write!(s, ",\"action\":\"{action}\",\"target\":{target}")
        }
    }
    .expect("write to String");
    s.push('}');
    s
}

/// Renders all events, one per line.
pub fn render_events(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Renders the registry's counters and histogram summaries, one JSON
/// object per line.
pub fn render_metrics(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        out.push_str(&format!(
            "{{\"metric\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
        ));
    }
    for (name, hist) in metrics.histograms() {
        out.push_str(&format!(
            "{{\"metric\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"p50\":{:.4},\"p90\":{:.4},\"p99\":{:.4}}}\n",
            hist.count(),
            hist.quantile(0.5),
            hist.quantile(0.9),
            hist.quantile(0.99),
        ));
    }
    out
}

/// Renders the typed hub: one JSON object per counter, gauge and
/// histogram summary, keyed by the canonical metric path.
///
/// ```json
/// {"metric":"counter","name":"crypto/exp","value":816}
/// {"metric":"gauge","name":"gcs/pending_peak","value":4}
/// {"metric":"histogram","name":"harness/TGDH/rekey_ms","count":9,"min":1.2,"p50":3.1,"p95":6.0,"p99":6.0,"max":6.2}
/// ```
pub fn render_hub(hub: &crate::metrics::MetricsHub) -> String {
    let mut out = String::new();
    for (key, value) in hub.counters() {
        out.push_str(&format!(
            "{{\"metric\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
            key.path()
        ));
    }
    for (key, value) in hub.gauges() {
        out.push_str(&format!(
            "{{\"metric\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}\n",
            key.path()
        ));
    }
    for (key, hist) in hub.histograms() {
        let s = hist.summary();
        out.push_str(&format!(
            "{{\"metric\":\"histogram\",\"name\":\"{}\",\"count\":{},\"min\":{:.6},\"p50\":{:.6},\"p95\":{:.6},\"p99\":{:.6},\"max\":{:.6}}}\n",
            key.path(),
            s.count,
            s.min,
            s.p50,
            s.p95,
            s.p99,
            s.max,
        ));
    }
    out
}

/// Full trace dump: every event line followed by every metric line
/// (legacy registry first, then the typed hub).
pub fn render_recorder(rec: &Recorder) -> String {
    let mut out = render_events(rec.events());
    out.push_str(&render_metrics(rec.metrics()));
    out.push_str(&render_hub(rec.hub()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CryptoOpKind, SendClass};
    use gkap_sim::{Duration, SimTime};

    fn ev(kind: EventKind) -> Event {
        Event {
            at: SimTime::from_nanos(1_500_000),
            dur: Duration::from_micros(250),
            actor: Actor::Client(2),
            kind,
        }
    }

    #[test]
    fn event_lines_are_valid_single_objects() {
        let kinds = vec![
            EventKind::MembershipEvent {
                action: "inject_join",
                group_size: 14,
            },
            EventKind::ProtocolRound {
                protocol: "GDH",
                round: 3,
            },
            EventKind::CryptoOp {
                op: CryptoOpKind::Exp,
                bits: 512,
            },
            EventKind::TokenRotation { rotation: 7 },
            EventKind::Retransmit { seq: 42 },
            EventKind::FecRepair { seq: 43 },
            EventKind::Sequenced { seq: 42, sender: 1 },
            EventKind::Delivered {
                sender: 1,
                service: "agreed",
            },
            EventKind::ViewInstalled { view_id: 9 },
            EventKind::HandlerSpan {
                wait: Duration::from_micros(80),
            },
            EventKind::MessageSend {
                class: SendClass::Multicast,
            },
            EventKind::Fault {
                action: "crash",
                target: 4,
            },
        ];
        for kind in kinds {
            let line = event_to_json(&ev(kind));
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            // Braces balance and quotes pair up — cheap well-formedness.
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
            assert!(line.contains("\"at_ms\":1.5"), "{line}");
        }
    }

    #[test]
    fn recorder_dump_has_events_then_metrics() {
        let mut rec = Recorder::default();
        rec.push(ev(EventKind::CryptoOp {
            op: CryptoOpKind::Sign,
            bits: 1024,
        }));
        let dump = render_recorder(&rec);
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"kind\":\"crypto_op\""));
        assert!(lines.iter().any(|l| l.contains("\"metric\":\"counter\"")
            && l.contains("crypto/sign")
            && l.contains("\"value\":1")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"metric\":\"histogram\"") && l.contains("crypto_ms/sign")));
    }
}

//! Cross-layer telemetry for the simulated group key agreement stack.
//!
//! Every quantity in this crate is keyed by **virtual** time
//! ([`gkap_sim::SimTime`]): recording an event never advances the
//! simulation clock, so an instrumented run produces bit-identical
//! results to an uninstrumented one. The paper's analysis (§6)
//! repeatedly decomposes total join/leave latency into membership
//! time, key-agreement rounds and cryptographic compute; the
//! [`Event`] stream captured here is exactly the evidence needed to
//! reproduce that decomposition for any simulated run.
//!
//! # Architecture
//!
//! * [`Telemetry`] is a cheaply-cloneable handle that is **disabled by
//!   default**. When disabled, every record call is a single `Option`
//!   check on a `None` — no event is constructed (all recording APIs
//!   take closures), no allocation happens, and virtual time is
//!   untouched.
//! * When enabled, the handle shares a [`Recorder`] holding the event
//!   log and a [`MetricsRegistry`] (named counters + log-linear
//!   histograms, reusing [`gkap_sim::stats::Histogram`]).
//! * [`jsonl`] renders the captured stream as one JSON object per line
//!   — the schema is documented on [`jsonl::event_to_json`].
//!
//! The simulation is single-threaded (a discrete-event loop), so the
//! shared state is `Rc<RefCell<…>>`, not a lock.
//!
//! # Span taxonomy
//!
//! | kind | layer | meaning |
//! |------|-------|---------|
//! | `MembershipEvent` | harness | membership change injected / completed |
//! | `ProtocolRound` | protocol driver | a numbered round of a GKA protocol started by a member |
//! | `CryptoOp` | crypto suite | one charged primitive (modexp, sign, …) with its virtual duration |
//! | `TokenRotation` | GCS engine | the ring token completed a full rotation |
//! | `Retransmit` | GCS engine | a daemon answered a missed-sequence retransmission request |
//! | `FecRepair` | GCS engine | a daemon reconstructed a missing message from FEC parity shards |
//! | `Sequenced` | GCS engine | a message obtained its Agreed-order sequence number |
//! | `Delivered` | GCS engine | a payload was delivered to a client |
//! | `ViewInstalled` | GCS engine | a daemon installed a membership view |
//! | `HandlerSpan` | CPU model | a client handler occupied a core (`dur`), after queueing (`wait`) |
//! | `MessageSend` | protocol driver | a protocol message entered the transport |
//! | `Fault` | chaos layer | a fault-injection or recovery action (crash, heal, restart, abort) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use gkap_sim::stats::Histogram;
use gkap_sim::{Duration, SimTime};

pub mod jsonl;
pub mod metrics;

use metrics::{Key, Layer, MetricsHub};

/// Which component produced an event. Plain indices (not the `gkap-gcs`
/// id aliases) so this crate stays at the bottom of the dependency
/// stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Actor {
    /// The experiment harness itself.
    World,
    /// A client (group member process), by client id.
    Client(usize),
    /// A GCS daemon, by daemon id.
    Daemon(usize),
    /// A machine (CPU model), by machine id.
    Machine(usize),
}

/// The cryptographic primitive charged by the cost model. Mirrors the
/// fields of `OpCounts` in `gkap-core` one-to-one so telemetry tallies
/// can be reconciled against the paper's Table 1 operation counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CryptoOpKind {
    /// Full-width modular exponentiation.
    Exp,
    /// Short-exponent modular exponentiation (e.g. RSA verify).
    SmallExp,
    /// Modular multiplication.
    ModMul,
    /// Modular inversion of an exponent.
    Inverse,
    /// Digital signature generation.
    Sign,
    /// Signature verification.
    Verify,
    /// Symmetric crypto / hashing work, per block.
    Symmetric,
    /// Per-message receive bookkeeping charged by the session layer.
    RecvOverhead,
}

impl CryptoOpKind {
    /// Stable lowercase name used in JSONL output and metric keys.
    pub fn as_str(self) -> &'static str {
        match self {
            CryptoOpKind::Exp => "exp",
            CryptoOpKind::SmallExp => "small_exp",
            CryptoOpKind::ModMul => "modmul",
            CryptoOpKind::Inverse => "inverse",
            CryptoOpKind::Sign => "sign",
            CryptoOpKind::Verify => "verify",
            CryptoOpKind::Symmetric => "symmetric",
            CryptoOpKind::RecvOverhead => "recv_overhead",
        }
    }
}

/// Transport class of a protocol message send (reconciles against the
/// `multicast`/`unicast` message counts of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendClass {
    /// Agreed- or FIFO-ordered multicast to the group.
    Multicast,
    /// Point-to-point message.
    Unicast,
}

impl SendClass {
    /// Stable lowercase name used in JSONL output and metric keys.
    pub fn as_str(self) -> &'static str {
        match self {
            SendClass::Multicast => "multicast",
            SendClass::Unicast => "unicast",
        }
    }
}

/// Structured payload of one telemetry event. See the module docs for
/// the taxonomy table.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A membership change: `action` is e.g. `"inject_join"`,
    /// `"key_established"`; `group_size` the resulting group size.
    MembershipEvent {
        /// What happened (stable snake_case label).
        action: &'static str,
        /// Group size after the change.
        group_size: usize,
    },
    /// A member started round `round` of `protocol`.
    ProtocolRound {
        /// Protocol name (`"GDH"`, `"TGDH"`, …).
        protocol: &'static str,
        /// 1-based round number within the current membership event.
        round: u32,
    },
    /// A charged cryptographic primitive; the event's `dur` is the
    /// virtual CPU time the cost model charged for it.
    CryptoOp {
        /// Which primitive.
        op: CryptoOpKind,
        /// Modulus size in bits (0 where not applicable).
        bits: u32,
    },
    /// The ring token completed a full rotation.
    TokenRotation {
        /// Rotation ordinal since simulation start.
        rotation: u64,
    },
    /// A retransmission of sequence `seq` was sent to a daemon that
    /// missed it.
    Retransmit {
        /// The Agreed sequence number being retransmitted.
        seq: u64,
    },
    /// A daemon reconstructed a missing message locally from the
    /// parity shards of its FEC-coded fan-out generation, without a
    /// retransmission round trip.
    FecRepair {
        /// The Agreed sequence number reconstructed.
        seq: u64,
    },
    /// A message obtained Agreed sequence number `seq`.
    Sequenced {
        /// The assigned sequence number.
        seq: u64,
        /// The sending client.
        sender: usize,
    },
    /// A payload was delivered to the actor client.
    Delivered {
        /// The original sender.
        sender: usize,
        /// Service class name (`"agreed"`, `"fifo"`, …).
        service: &'static str,
    },
    /// A daemon installed a view.
    ViewInstalled {
        /// Monotonic view identifier.
        view_id: u64,
    },
    /// A client handler occupied a CPU core for `dur`, having waited
    /// `wait` in the scheduler queue after becoming ready.
    HandlerSpan {
        /// Time spent queued behind other work on the machine.
        wait: Duration,
    },
    /// A protocol message entered the transport.
    MessageSend {
        /// Multicast or unicast.
        class: SendClass,
    },
    /// A fault-injection or recovery action from the chaos layer.
    ///
    /// `action` is a stable snake_case label: `"crash"` (a daemon
    /// died), `"crash_detected"` (ring reformed, token regenerated),
    /// `"loss_burst"` (temporary loss-rate override began), `"heal"`
    /// (partitioned members rejoined), `"restart"` (a member restarted
    /// an aborted agreement), `"abort"` (a view superseded an
    /// in-flight agreement), `"give_up"` (restart budget exhausted).
    Fault {
        /// What happened (stable snake_case label).
        action: &'static str,
        /// The affected entity (daemon id, client id, or group size —
        /// whichever the action concerns).
        target: usize,
    },
}

impl EventKind {
    /// Stable snake_case discriminant name (JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MembershipEvent { .. } => "membership",
            EventKind::ProtocolRound { .. } => "protocol_round",
            EventKind::CryptoOp { .. } => "crypto_op",
            EventKind::TokenRotation { .. } => "token_rotation",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::FecRepair { .. } => "fec_repair",
            EventKind::Sequenced { .. } => "sequenced",
            EventKind::Delivered { .. } => "delivered",
            EventKind::ViewInstalled { .. } => "view_installed",
            EventKind::HandlerSpan { .. } => "handler_span",
            EventKind::MessageSend { .. } => "message_send",
            EventKind::Fault { .. } => "fault",
        }
    }
}

/// One recorded event/span. `dur` is zero for instantaneous events; for
/// spans (`CryptoOp`, `HandlerSpan`) `at` is the span start and
/// `at + dur` the end, all in virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Virtual start time.
    pub at: SimTime,
    /// Virtual duration (zero for point events).
    pub dur: Duration,
    /// Producing component.
    pub actor: Actor,
    /// Structured payload.
    pub kind: EventKind,
}

/// Named counters plus log-linear latency histograms.
///
/// Counter keys are slash-separated paths (`"crypto/exp"`,
/// `"gcs/token_rotation"`). Histograms record milliseconds of virtual
/// time in log-linear buckets ([`gkap_sim::stats::Histogram`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `ms` into the named histogram, creating it with a
    /// 10 µs base and 1.6× growth (64 buckets reach past 10⁹ ms) on
    /// first use.
    pub fn observe_ms(&mut self, name: &str, ms: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(0.01, 1.6, 64))
            .record(ms);
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Owner of the captured event log and metrics. Usually accessed
/// through a [`Telemetry`] handle.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
    metrics: MetricsRegistry,
    hub: MetricsHub,
}

impl Recorder {
    /// Appends an event and bumps the per-kind counters that every
    /// event maintains automatically — both the legacy string-keyed
    /// [`MetricsRegistry`] (JSONL dumps) and the typed
    /// [`metrics::MetricsHub`] (run manifests, `bench-diff`).
    pub fn push(&mut self, ev: Event) {
        match &ev.kind {
            EventKind::CryptoOp { op, .. } => {
                self.metrics.inc(&format!("crypto/{}", op.as_str()), 1);
                self.metrics.observe_ms(
                    &format!("crypto_ms/{}", op.as_str()),
                    ev.dur.as_millis_f64(),
                );
                let key = Key::new(Layer::Crypto, op.as_str());
                self.hub.inc(key, 1);
                self.hub.observe(key, ev.dur.as_millis_f64());
            }
            EventKind::MessageSend { class } => {
                self.metrics.inc(&format!("send/{}", class.as_str()), 1);
                self.hub.inc(Key::new(Layer::Protocol, class.as_str()), 1);
            }
            EventKind::ProtocolRound { protocol, .. } => {
                self.metrics.inc(&format!("rounds/{protocol}"), 1);
                self.hub
                    .inc(Key::new(Layer::Protocol, "rounds").protocol(protocol), 1);
            }
            EventKind::TokenRotation { .. } => {
                self.metrics.inc("gcs/token_rotation", 1);
                self.hub.inc(Key::new(Layer::Gcs, "token_rotation"), 1);
            }
            EventKind::Retransmit { .. } => {
                self.metrics.inc("gcs/retransmit", 1);
                self.hub.inc(Key::new(Layer::Gcs, "retransmit"), 1);
            }
            EventKind::FecRepair { .. } => {
                self.metrics.inc("gcs/fec_repair", 1);
                self.hub.inc(Key::new(Layer::Gcs, "fec_repair"), 1);
            }
            EventKind::Sequenced { .. } => {
                self.metrics.inc("gcs/sequenced", 1);
                self.hub.inc(Key::new(Layer::Gcs, "sequenced"), 1);
            }
            EventKind::Delivered { .. } => {
                self.metrics.inc("gcs/delivered", 1);
                self.hub.inc(Key::new(Layer::Gcs, "delivered"), 1);
            }
            EventKind::ViewInstalled { .. } => {
                self.metrics.inc("gcs/view_installed", 1);
                self.hub.inc(Key::new(Layer::Gcs, "view_installed"), 1);
            }
            EventKind::HandlerSpan { wait } => {
                self.metrics
                    .observe_ms("cpu/busy_ms", ev.dur.as_millis_f64());
                self.metrics.observe_ms("cpu/wait_ms", wait.as_millis_f64());
                self.hub
                    .observe(Key::new(Layer::Sim, "busy_ms"), ev.dur.as_millis_f64());
                self.hub
                    .observe(Key::new(Layer::Sim, "wait_ms"), wait.as_millis_f64());
            }
            EventKind::MembershipEvent { action, .. } => {
                self.metrics.inc("membership/events", 1);
                let key = Key::new(Layer::Harness, action);
                self.hub.inc(key, 1);
                if ev.dur > Duration::ZERO {
                    self.hub.observe(key, ev.dur.as_millis_f64());
                }
            }
            EventKind::Fault { action, .. } => {
                self.metrics.inc(&format!("fault/{action}"), 1);
                self.hub.inc(Key::new(Layer::Gcs, action), 1);
            }
        }
        self.events.push(ev);
    }

    /// The captured events, in recording order (which is nondecreasing
    /// in `at` because the simulation processes events in time order).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for harness-level
    /// counters that have no event representation).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The typed metrics hub.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Mutable access to the typed metrics hub.
    pub fn hub_mut(&mut self) -> &mut MetricsHub {
        &mut self.hub
    }
}

/// Cheap handle to a shared [`Recorder`]; `None` means disabled.
///
/// All recording goes through closures so that a disabled handle does
/// no work beyond one branch:
///
/// ```
/// use gkap_telemetry::{Actor, Event, EventKind, Telemetry};
/// use gkap_sim::{Duration, SimTime};
///
/// let off = Telemetry::disabled();
/// off.record(|| unreachable!("closure never runs when disabled"));
///
/// let on = Telemetry::enabled();
/// on.record(|| Event {
///     at: SimTime::ZERO,
///     dur: Duration::ZERO,
///     actor: Actor::World,
///     kind: EventKind::TokenRotation { rotation: 1 },
/// });
/// assert_eq!(on.with(|r| r.events().len()), Some(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Telemetry {
    /// A disabled handle (the default): recording is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh enabled handle with an empty recorder.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Recorder::default()))),
        }
    }

    /// Whether events are being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `f` — `f` only runs when enabled.
    #[inline]
    pub fn record(&self, f: impl FnOnce() -> Event) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().push(f());
        }
    }

    /// Runs `f` against the recorder when enabled, returning its result.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> Option<R> {
        self.inner.as_ref().map(|rec| f(&rec.borrow()))
    }

    /// Runs `f` with mutable recorder access when enabled.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
        self.inner.as_ref().map(|rec| f(&mut rec.borrow_mut()))
    }

    /// Clones the captured events (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.with(|r| r.events().to_vec()).unwrap_or_default()
    }

    /// Current value of a counter (zero when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|r| r.metrics().counter(name)).unwrap_or(0)
    }

    /// Adds `by` to a typed counter. [`Key`] construction is
    /// allocation-free, so callers build keys unconditionally; a
    /// disabled handle pays one branch.
    #[inline]
    pub fn metric_inc(&self, key: Key, by: u64) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().hub.inc(key, by);
        }
    }

    /// Records the sample produced by `f` into a typed histogram —
    /// `f` only runs when enabled.
    #[inline]
    pub fn metric_observe(&self, key: Key, f: impl FnOnce() -> f64) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().hub.observe(key, f());
        }
    }

    /// Raises a typed gauge to the value produced by `f` (peak
    /// tracking) — `f` only runs when enabled.
    #[inline]
    pub fn gauge_max(&self, key: Key, f: impl FnOnce() -> f64) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().hub.gauge_max(key, f());
        }
    }

    /// Current value of a typed counter (zero when disabled or absent).
    pub fn metric(&self, key: Key) -> u64 {
        self.with(|r| r.hub.counter(key)).unwrap_or(0)
    }

    /// Clones the typed metrics hub (empty when disabled).
    pub fn hub_snapshot(&self) -> MetricsHub {
        self.with(|r| r.hub.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::ZERO + Duration::from_millis(at_ms),
            dur: Duration::from_micros(250),
            actor: Actor::Client(3),
            kind,
        }
    }

    #[test]
    fn disabled_handle_never_runs_closures() {
        let t = Telemetry::disabled();
        t.record(|| panic!("must not run"));
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.counter("crypto/exp"), 0);
    }

    #[test]
    fn enabled_handle_shares_one_recorder() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.record(|| {
            ev(
                1,
                EventKind::CryptoOp {
                    op: CryptoOpKind::Exp,
                    bits: 512,
                },
            )
        });
        t.record(|| {
            ev(
                2,
                EventKind::CryptoOp {
                    op: CryptoOpKind::Exp,
                    bits: 512,
                },
            )
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.counter("crypto/exp"), 2);
        // The auto-histogram observed both durations.
        t.with(|r| {
            let h = r.metrics().histogram("crypto_ms/exp").expect("histogram");
            assert_eq!(h.count(), 2);
        })
        .unwrap();
    }

    #[test]
    fn per_kind_counters_accumulate() {
        let t = Telemetry::enabled();
        t.record(|| ev(0, EventKind::TokenRotation { rotation: 1 }));
        t.record(|| ev(1, EventKind::Retransmit { seq: 9 }));
        t.record(|| ev(1, EventKind::FecRepair { seq: 10 }));
        t.record(|| ev(1, EventKind::Sequenced { seq: 9, sender: 0 }));
        t.record(|| {
            ev(
                2,
                EventKind::MessageSend {
                    class: SendClass::Unicast,
                },
            )
        });
        assert_eq!(t.counter("gcs/token_rotation"), 1);
        assert_eq!(t.counter("gcs/retransmit"), 1);
        assert_eq!(t.counter("gcs/fec_repair"), 1);
        assert_eq!(t.counter("gcs/sequenced"), 1);
        assert_eq!(t.counter("send/unicast"), 1);
        assert_eq!(t.counter("send/multicast"), 0);
    }

    #[test]
    fn registry_counts_and_observes() {
        let mut m = MetricsRegistry::new();
        m.inc("a/b", 2);
        m.inc("a/b", 3);
        assert_eq!(m.counter("a/b"), 5);
        assert_eq!(m.counter("missing"), 0);
        m.observe_ms("lat", 1.0);
        m.observe_ms("lat", 100.0);
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= 100.0);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.histograms().count(), 1);
    }
}

//! Typed, mergeable metrics keyed by `(layer, name, protocol, group)`.
//!
//! The PR 1 [`crate::MetricsRegistry`] keeps flat string-keyed
//! counters for the JSONL trace dump; this module is the structured
//! layer the run manifests and the `bench-diff` regression gate are
//! built on:
//!
//! * [`Key`] is a `Copy` composite of a [`Layer`], a static metric
//!   name and optional protocol/group labels — constructing one
//!   allocates nothing, so hot paths can build keys unconditionally
//!   and let the disabled-telemetry branch throw them away.
//! * [`LogHistogram`] is a log-linear latency histogram reporting
//!   p50/p95/p99 plus the **exact** min/max. Recording never calls a
//!   transcendental function: bucket bounds are precomputed by
//!   repeated multiplication and looked up by binary search, so the
//!   same samples land in the same buckets on every platform — the
//!   property the CI regression gate's exact comparisons rely on.
//! * Merging ([`LogHistogram::merge`], [`MetricsHub::merge`]) is
//!   exact: bucket counts are integer sums and min/max are IEEE
//!   min/max, both associative and commutative, so per-shard hubs can
//!   be folded in any order and render identical bytes.
//!
//! Everything iterates in `BTreeMap` key order — metric output is a
//! deterministic function of the recorded samples, never of hash
//! seeds or insertion order.

use std::collections::BTreeMap;

/// Which layer of the stack a metric belongs to. Order defines the
/// rendering order of manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The discrete-event simulation core (event loop, CPU model).
    Sim,
    /// The group communication system (token ring, flow control).
    Gcs,
    /// The GKA protocol drivers.
    Protocol,
    /// The cryptographic suite and bignum kernels.
    Crypto,
    /// The experiment harness (workload spans, batch attribution).
    Harness,
}

impl Layer {
    /// Stable lowercase name used in metric paths.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Sim => "sim",
            Layer::Gcs => "gcs",
            Layer::Protocol => "protocol",
            Layer::Crypto => "crypto",
            Layer::Harness => "harness",
        }
    }
}

/// A metric identity: layer + static name + optional protocol and
/// group labels. `Copy`, allocation-free, totally ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Producing layer.
    pub layer: Layer,
    /// Metric name (stable snake_case identifier).
    pub name: &'static str,
    /// Protocol label (`"GDH"`, …) where the metric is per-protocol.
    pub protocol: Option<&'static str>,
    /// Group label where the metric is per-group.
    pub group: Option<u64>,
}

impl Key {
    /// A key with no protocol/group labels.
    pub const fn new(layer: Layer, name: &'static str) -> Self {
        Key {
            layer,
            name,
            protocol: None,
            group: None,
        }
    }

    /// This key labelled with a protocol.
    pub const fn protocol(mut self, protocol: &'static str) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// This key labelled with a group.
    pub const fn group(mut self, group: u64) -> Self {
        self.group = Some(group);
        self
    }

    /// Canonical path rendering: `layer/name`, `layer/PROTO/name` or
    /// `layer/PROTO/g42/name`. Used as the manifest JSON key.
    pub fn path(&self) -> String {
        let mut s = String::with_capacity(32);
        s.push_str(self.layer.as_str());
        s.push('/');
        if let Some(p) = self.protocol {
            s.push_str(p);
            s.push('/');
        }
        if let Some(g) = self.group {
            s.push('g');
            s.push_str(&g.to_string());
            s.push('/');
        }
        s.push_str(self.name);
        s
    }
}

/// Default histogram shape: 10 µs base, 1.6× growth, 64 buckets
/// (reaches past 10⁹ ms) — the same shape the PR 1 registry uses.
pub const DEFAULT_BASE: f64 = 0.01;
/// Default growth factor.
pub const DEFAULT_GROWTH: f64 = 1.6;
/// Default bucket count.
pub const DEFAULT_BUCKETS: usize = 64;

/// A log-linear histogram with exact min/max, built for deterministic
/// cross-platform merging (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    /// Lower bound of each bucket, ascending; `bounds[0]` is the base.
    /// Precomputed by repeated multiplication — no `ln`/`pow` at
    /// record time.
    bounds: Vec<f64>,
    growth: f64,
    buckets: Vec<u64>,
    underflow: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(DEFAULT_BASE, DEFAULT_GROWTH, DEFAULT_BUCKETS)
    }
}

impl LogHistogram {
    /// Creates a histogram with `buckets` log-spaced buckets starting
    /// at `base` with the given `growth` factor. Degenerate shapes
    /// (non-positive base, growth ≤ 1, zero buckets) fall back to the
    /// default shape rather than panicking.
    pub fn new(base: f64, growth: f64, buckets: usize) -> Self {
        let (base, growth, buckets) = if base > 0.0
            && base.is_finite()
            && growth > 1.0
            && growth.is_finite()
            && buckets > 0
        {
            (base, growth, buckets)
        } else {
            (DEFAULT_BASE, DEFAULT_GROWTH, DEFAULT_BUCKETS)
        };
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = base;
        for _ in 0..buckets {
            bounds.push(b);
            b *= growth;
        }
        LogHistogram {
            bounds,
            growth,
            buckets: vec![0; buckets],
            underflow: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample. Values below the base land in the underflow
    /// bucket; values beyond the top land in the last bucket;
    /// non-finite values count toward `count` but only clamp min/max
    /// when finite.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        if !v.is_finite() || v < self.bounds[0] {
            self.underflow += 1;
            return;
        }
        // partition_point returns how many bounds are <= v; the sample
        // belongs to the last such bucket.
        let idx = self.bounds.partition_point(|b| *b <= v);
        let idx = idx.saturating_sub(1).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest finite sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Exact largest finite sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Approximate quantile (upper bound of the bucket holding the
    /// q-th sample), clamped to the exact max so `quantile(1.0)` never
    /// overstates the tail. `q` outside `[0, 1]` is clamped. Returns
    /// `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        let mut bound = self.bounds[0];
        if seen < target {
            let mut found = false;
            for (i, &c) in self.buckets.iter().enumerate() {
                seen += c;
                if seen >= target {
                    bound = self.bounds[i] * self.growth;
                    found = true;
                    break;
                }
            }
            if !found {
                // Unreachable in practice (every sample lands in a
                // bucket or the underflow), but stay total.
                bound = self.max();
            }
        }
        if self.max.is_finite() {
            bound.min(self.max)
        } else {
            bound
        }
    }

    /// Merges another histogram into this one. Exact, associative and
    /// commutative: integer bucket sums plus IEEE min/max. Histograms
    /// of different shapes refuse to merge and return `false` (the
    /// caller picked incompatible shapes — a programming error
    /// surfaced as a reported, not panicked, condition).
    #[must_use]
    pub fn merge(&mut self, other: &LogHistogram) -> bool {
        if self.bounds.len() != other.bounds.len()
            || self.bounds.first() != other.bounds.first()
            || self.growth != other.growth
        {
            return false;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }

    /// The five-number summary the manifests serialize.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// The serialized form of a histogram: sample count plus
/// p50/p95/p99 and the exact min/max.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact smallest sample.
    pub min: f64,
    /// Median (bucket upper bound).
    pub p50: f64,
    /// 95th percentile (bucket upper bound).
    pub p95: f64,
    /// 99th percentile (bucket upper bound).
    pub p99: f64,
    /// Exact largest sample.
    pub max: f64,
}

/// The typed metrics store: counters, gauges and histograms, each
/// keyed by [`Key`] and iterated in key order.
#[derive(Clone, Debug, Default)]
pub struct MetricsHub {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, LogHistogram>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter (creating it at zero).
    pub fn inc(&mut self, key: Key, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Current counter value (zero if never incremented).
    pub fn counter(&self, key: Key) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&mut self, key: Key, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Raises a gauge to `v` if `v` exceeds its current value (peak
    /// tracking: queue depths, high-water marks).
    pub fn gauge_max(&mut self, key: Key, v: f64) {
        let g = self.gauges.entry(key).or_insert(f64::NEG_INFINITY);
        if v > *g {
            *g = v;
        }
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, key: Key) -> Option<f64> {
        self.gauges.get(&key).copied()
    }

    /// Records a sample into the keyed histogram (default shape on
    /// first use).
    pub fn observe(&mut self, key: Key, v: f64) {
        self.histograms.entry(key).or_default().record(v);
    }

    /// The keyed histogram, if any sample was recorded.
    pub fn histogram(&self, key: Key) -> Option<&LogHistogram> {
        self.histograms.get(&key)
    }

    /// Merges another hub into this one: counters add, gauges take the
    /// max (the merged peak), histograms merge exactly. Returns `false`
    /// if any histogram pair had incompatible shapes (all compatible
    /// metrics are still merged).
    #[must_use]
    pub fn merge(&mut self, other: &MetricsHub) -> bool {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauge_max(*k, *v);
        }
        let mut ok = true;
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => ok &= mine.merge(h),
                None => {
                    self.histograms.insert(*k, h.clone());
                }
            }
        }
        ok
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&Key, f64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&Key, &LogHistogram)> {
        self.histograms.iter()
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_paths_render_all_label_combinations() {
        let k = Key::new(Layer::Gcs, "token_rotation");
        assert_eq!(k.path(), "gcs/token_rotation");
        assert_eq!(k.protocol("TGDH").path(), "gcs/TGDH/token_rotation");
        assert_eq!(
            k.protocol("TGDH").group(3).path(),
            "gcs/TGDH/g3/token_rotation"
        );
        assert_eq!(k.group(9).path(), "gcs/g9/token_rotation");
        // Ordering is total and stable.
        assert!(Key::new(Layer::Sim, "a") < Key::new(Layer::Gcs, "a"));
        assert!(Key::new(Layer::Gcs, "a") < Key::new(Layer::Gcs, "b"));
    }

    #[test]
    fn histogram_percentiles_bracket_and_extremes_are_exact() {
        let mut h = LogHistogram::default();
        for v in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0.5, "min is exact");
        assert_eq!(h.max(), 64.0, "max is exact");
        let p50 = h.quantile(0.5);
        assert!((2.0..=8.0).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 64.0, "p100 clamps to the exact max");
        // Out-of-range q is clamped, not panicked.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
    }

    #[test]
    fn histogram_empty_and_pathological_inputs_are_total() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!((h.min(), h.max()), (0.0, 0.0));
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-3.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -3.0);
        // Degenerate shapes fall back to the default, never panic.
        let d = LogHistogram::new(0.0, 0.5, 0);
        assert_eq!(d, LogHistogram::default());
    }

    #[test]
    fn histogram_bucketing_matches_bounds_without_ln() {
        // A sample exactly on a bucket bound belongs to that bucket:
        // bounds are half-open [b_i, b_{i+1}).
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        h.record(1.0); // bucket [1, 2)
        h.record(2.0); // bucket [2, 4) — a bound belongs to its bucket
        h.record(3.9999); // bucket [2, 4)
        h.record(4.0); // bucket [4, 8)
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), 2.0, "first sample's bucket upper bound");
        assert_eq!(h.quantile(0.75), 4.0, "third sample lands in [2, 4)");
        assert_eq!(h.quantile(1.0), 4.0, "clamped to the exact max");
    }

    #[test]
    fn merge_is_exact_and_refuses_shape_mismatch() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(1.0);
        b.record(100.0);
        b.record(0.001); // underflow
        assert!(a.merge(&b));
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0.001);
        assert_eq!(a.max(), 100.0);
        let other_shape = LogHistogram::new(1.0, 2.0, 8);
        assert!(!a.merge(&other_shape));
    }

    #[test]
    fn hub_counters_gauges_histograms_roundtrip() {
        let mut hub = MetricsHub::new();
        let k = Key::new(Layer::Crypto, "exp").protocol("GDH");
        hub.inc(k, 2);
        hub.inc(k, 3);
        assert_eq!(hub.counter(k), 5);
        assert_eq!(hub.counter(Key::new(Layer::Crypto, "exp")), 0);
        hub.gauge_max(Key::new(Layer::Sim, "queue_depth"), 4.0);
        hub.gauge_max(Key::new(Layer::Sim, "queue_depth"), 2.0);
        assert_eq!(hub.gauge(Key::new(Layer::Sim, "queue_depth")), Some(4.0));
        hub.observe(k, 1.5);
        assert_eq!(hub.histogram(k).map(LogHistogram::count), Some(1));
        assert!(!hub.is_empty());
    }

    #[test]
    fn hub_merge_adds_counts_and_peaks_gauges() {
        let k = Key::new(Layer::Gcs, "sequenced");
        let g = Key::new(Layer::Gcs, "pending_peak");
        let mut a = MetricsHub::new();
        let mut b = MetricsHub::new();
        a.inc(k, 1);
        b.inc(k, 2);
        a.gauge_max(g, 3.0);
        b.gauge_max(g, 5.0);
        b.observe(k, 9.0);
        assert!(a.merge(&b));
        assert_eq!(a.counter(k), 3);
        assert_eq!(a.gauge(g), Some(5.0));
        assert_eq!(a.histogram(k).map(LogHistogram::count), Some(1));
    }

    #[test]
    fn summary_reflects_samples() {
        let mut h = LogHistogram::default();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // The p50 is a bucket upper bound: within one growth factor
        // of the true median.
        assert!(
            s.p50 >= 50.0 && s.p50 <= 50.0 * DEFAULT_GROWTH,
            "p50 = {}",
            s.p50
        );
    }
}

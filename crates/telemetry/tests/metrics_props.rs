//! Property tests for the typed metrics layer: histogram merging must
//! be exactly associative and commutative (integer bucket sums, IEEE
//! min/max), because the manifest writer folds per-protocol hubs in
//! whatever order the harness produces them and the `bench-diff` gate
//! compares the rendered bytes.

use gkap_telemetry::metrics::{Key, Layer, LogHistogram, MetricsHub};
use proptest::prelude::*;

/// Millisecond-scale samples spanning underflow (< 10 µs) through the
/// far tail.
fn sample(raw: u64) -> f64 {
    // Map 0..10_000 to [0.001, ~100_000) ms, log-ish coverage.
    let x = (raw % 10_000) as f64;
    0.001 * (1.0 + x) * (1.0 + (raw % 7) as f64 * x)
}

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::default();
    for &s in samples {
        h.record(sample(s));
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(0u64..1_000_000, 0..200),
                            b in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        prop_assert!(ab.merge(&hb));
        let mut ba = hb.clone();
        prop_assert!(ba.merge(&ha));
        prop_assert_eq!(&ab, &ba, "a∪b must equal b∪a bit for bit");
        prop_assert_eq!(ab.summary(), ba.summary());
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(0u64..1_000_000, 0..120),
                            b in proptest::collection::vec(0u64..1_000_000, 0..120),
                            c in proptest::collection::vec(0u64..1_000_000, 0..120)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        prop_assert!(left.merge(&hb));
        prop_assert!(left.merge(&hc));
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        prop_assert!(bc.merge(&hc));
        let mut right = ha.clone();
        prop_assert!(right.merge(&bc));
        prop_assert_eq!(&left, &right, "merge grouping must not matter");
    }

    #[test]
    fn merge_equals_bulk_recording(a in proptest::collection::vec(0u64..1_000_000, 0..200),
                                   b in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut merged = hist_of(&a);
        prop_assert!(merged.merge(&hist_of(&b)));
        let mut bulk = LogHistogram::default();
        for &s in a.iter().chain(&b) {
            bulk.record(sample(s));
        }
        prop_assert_eq!(&merged, &bulk, "merging shards equals recording the union");
    }

    #[test]
    fn hub_merge_is_commutative(a in proptest::collection::vec((0u64..4, 0u64..1_000_000), 0..100),
                                b in proptest::collection::vec((0u64..4, 0u64..1_000_000), 0..100)) {
        let (ha, hb) = (hub_of(&a), hub_of(&b));
        let mut ab = ha.clone();
        prop_assert!(ab.merge(&hb));
        let mut ba = hb.clone();
        prop_assert!(ba.merge(&ha));
        for key in KEYS {
            prop_assert_eq!(ab.counter(key), ba.counter(key));
            prop_assert_eq!(ab.gauge(key), ba.gauge(key));
            prop_assert_eq!(
                ab.histogram(key).map(LogHistogram::summary),
                ba.histogram(key).map(LogHistogram::summary)
            );
        }
    }

    /// Per-shard hub deltas merge in whatever grouping the fold uses;
    /// the sharded scale engine merges group hubs one by one, so the
    /// grouping (and a pre-merged intermediate) must be invisible.
    #[test]
    fn hub_merge_is_associative(a in proptest::collection::vec((0u64..4, 0u64..1_000_000), 0..80),
                                b in proptest::collection::vec((0u64..4, 0u64..1_000_000), 0..80),
                                c in proptest::collection::vec((0u64..4, 0u64..1_000_000), 0..80)) {
        let (ha, hb, hc) = (hub_of(&a), hub_of(&b), hub_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        prop_assert!(left.merge(&hb));
        prop_assert!(left.merge(&hc));
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        prop_assert!(bc.merge(&hc));
        let mut right = ha.clone();
        prop_assert!(right.merge(&bc));
        for key in KEYS {
            prop_assert_eq!(left.counter(key), right.counter(key));
            prop_assert_eq!(left.gauge(key), right.gauge(key));
            prop_assert_eq!(
                left.histogram(key).map(LogHistogram::summary),
                right.histogram(key).map(LogHistogram::summary)
            );
        }
    }
}

const KEYS: [Key; 4] = [
    Key::new(Layer::Harness, "rekey_ms"),
    Key::new(Layer::Crypto, "exp"),
    Key::new(Layer::Gcs, "sequenced"),
    Key::new(Layer::Sim, "busy_ms"),
];

/// A hub exercising all three metric classes over a fixed key set.
fn hub_of(entries: &[(u64, u64)]) -> MetricsHub {
    let mut hub = MetricsHub::new();
    for &(k, v) in entries {
        let key = KEYS[(k % 4) as usize];
        hub.inc(key, v % 17);
        hub.observe(key, sample(v));
        hub.gauge_max(key, sample(v));
    }
    hub
}

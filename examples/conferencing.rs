//! A collaborative-conference scenario (the paper's motivating
//! application): members trickle into a call, some hang up, the
//! network partitions and heals — and after every change the group
//! re-keys. Prints the total elapsed time per event for two contrasting
//! protocols (TGDH vs BD).
//!
//! Run with: `cargo run --example conferencing`

use std::rc::Rc;

use secure_spread_repro::core::member::SecureMember;
use secure_spread_repro::core::suite::CryptoSuite;
use secure_spread_repro::gcs::{testbed, ClientId, SimWorld};
use secure_spread_repro::ProtocolKind;

fn run_conference(kind: ProtocolKind) {
    println!("--- {} ---", kind.name());
    let suite = Rc::new(CryptoSuite::sim_512());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..12u64 {
        world.add_client(Box::new(SecureMember::new(
            kind,
            Rc::clone(&suite),
            1000 + i,
            Some(7),
        )));
    }

    // The call starts with two participants.
    world.install_initial_view_of(vec![0, 1]);
    world.run_until_quiescent();

    let event = |world: &mut SimWorld, what: &str, joined: Vec<ClientId>, left: Vec<ClientId>| {
        let t0 = world.now().as_millis_f64();
        world.inject_change(joined, left);
        world.run_until_quiescent();
        let view = world.view().unwrap().clone();
        let done = view
            .members
            .iter()
            .map(|&c| {
                world
                    .client::<SecureMember>(c)
                    .completion(view.id)
                    .expect("key established")
                    .as_millis_f64()
            })
            .fold(0.0f64, f64::max);
        println!(
            "{what:<28} -> {:>2} members, re-key in {:>7.2} ms",
            view.members.len(),
            done - t0
        );
    };

    // Participants join one at a time (the common case the paper
    // optimizes for).
    for j in 2..8 {
        event(
            &mut world,
            &format!("participant {j} joins"),
            vec![j],
            vec![],
        );
    }
    // Two hang up.
    event(&mut world, "participant 3 leaves", vec![], vec![3]);
    event(&mut world, "participant 5 leaves", vec![], vec![5]);
    // A network fault cuts three members off at once…
    event(
        &mut world,
        "partition (3 members lost)",
        vec![],
        vec![1, 4, 7],
    );
    // …and two fresh participants join while it is still healing.
    event(&mut world, "two new participants", vec![8, 9], vec![]);

    // Every surviving member agrees on the final key.
    let view = world.view().unwrap().clone();
    let secret = world
        .client::<SecureMember>(view.members[0])
        .secret(view.id)
        .unwrap()
        .clone();
    for &m in &view.members {
        assert_eq!(
            world.client::<SecureMember>(m).secret(view.id),
            Some(&secret)
        );
    }
    println!("final view {:?} shares one key\n", view.members);
}

fn main() {
    for kind in [ProtocolKind::Tgdh, ProtocolKind::Bd] {
        run_conference(kind);
    }
    println!("note how BD re-keys cost roughly the same for joins and");
    println!("leaves while TGDH leaves are much cheaper — Figure 11/12.");
    println!();

    // The same experiment as a declarative, replayable scenario.
    use secure_spread_repro::core::experiment::{ExperimentConfig, SuiteKind};
    use secure_spread_repro::core::scenario::Scenario;
    use secure_spread_repro::run_scenario;
    println!("scenario replay (20 churn events, TGDH, DH-512):");
    let cfg = ExperimentConfig::lan(ProtocolKind::Tgdh, SuiteKind::Sim512);
    let report = run_scenario(&cfg, &Scenario::conference(4, 20));
    assert!(report.ok);
    println!(
        "  mean {:.1} ms   min {:.1}   max {:.1}   p50 ≤ {:.1}   p95 ≤ {:.1}",
        report.summary.mean(),
        report.summary.min(),
        report.summary.max(),
        report.histogram.quantile(0.5),
        report.histogram.quantile(0.95),
    );
}

//! Choosing a key agreement protocol for a deployment: static advice
//! from the paper's conclusions, cross-checked by running the actual
//! simulation for the workload.
//!
//! Run with: `cargo run --release --example protocol_advisor`

use secure_spread_repro::core::advisor::{
    advise, rank_by_measurement, EventMix, NetworkKind, Workload,
};
use secure_spread_repro::gcs::testbed;

fn main() {
    let cases = [
        (
            "LAN conference, churny joins/leaves, ~30 members",
            Workload {
                network: NetworkKind::Lan,
                events: EventMix::JoinLeave,
                group_size: 30,
            },
            testbed::lan(),
        ),
        (
            "three-continent replica group, joins/leaves, ~20 members",
            Workload {
                network: NetworkKind::Wan,
                events: EventMix::JoinLeave,
                group_size: 20,
            },
            testbed::wan(),
        ),
        (
            "flaky WAN with partitions and merges, ~12 members",
            Workload {
                network: NetworkKind::Wan,
                events: EventMix::PartitionMerge,
                group_size: 12,
            },
            testbed::wan(),
        ),
    ];

    for (label, workload, gcs) in cases {
        println!("== {label}");
        println!("   paper's advice: {}", advise(&workload));
        let ranking = rank_by_measurement(&gcs, &workload);
        print!("   measured      : ");
        for (i, s) in ranking.iter().enumerate() {
            if i > 0 {
                print!("  >  ");
            }
            print!("{} ({:.0} ms)", s.protocol, s.mean_ms);
        }
        println!("\n");
    }
    println!("(measured = weighted mean event time in the full simulation;");
    println!(" the paper's §6.3 conclusion — TGDH overall, with STR for");
    println!(" partition-heavy WANs — falls out of the measurements)");
}

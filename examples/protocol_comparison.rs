//! Live reproduction of the paper's Table 1: runs each protocol's
//! join and leave on a real message exchange (loopback harness) and
//! prints the *measured* aggregate operation counts next to each
//! other, followed by the paper's serial-cost table.
//!
//! Run with: `cargo run --example protocol_comparison`

use secure_spread_repro::core::costs_table::render_table1;
use secure_spread_repro::core::suite::CryptoSuite;
use secure_spread_repro::core::testkit::Loopback;
use secure_spread_repro::ProtocolKind;

fn main() {
    let n = 16usize;
    println!("measured aggregate costs for one JOIN into a group of {n}");
    println!(
        "{:<6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "proto", "exps", "small-exp", "signs", "verifs", "mcasts", "ucasts"
    );
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..n + 1).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..n], 9);
        let before = lb.total_counts();
        lb.install_view(ids.clone(), vec![n], vec![]);
        let d = lb.total_counts().since(&before);
        println!(
            "{:<6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            kind.name(),
            d.exp,
            d.small_exp,
            d.sign,
            d.verify,
            d.multicast,
            d.unicast
        );
    }
    println!();
    println!("measured aggregate costs for one LEAVE from a group of {n}");
    println!(
        "{:<6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "proto", "exps", "small-exp", "signs", "verifs", "mcasts", "ucasts"
    );
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..n).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 9);
        let before = lb.total_counts();
        let leaver = n / 2;
        let members: Vec<usize> = ids.iter().copied().filter(|&c| c != leaver).collect();
        lb.install_view(members, vec![], vec![leaver]);
        let d = lb.total_counts().since(&before);
        println!(
            "{:<6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            kind.name(),
            d.exp,
            d.small_exp,
            d.sign,
            d.verify,
            d.multicast,
            d.unicast
        );
    }
    println!();
    println!("{}", render_table1(n, 4, 4));
    println!("(the rendered table shows the paper's serial formulas; the");
    println!("measured numbers above are aggregates over all members)");
}

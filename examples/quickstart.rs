//! Quickstart: form a secure group with TGDH on the paper's LAN
//! testbed, admit a new member, and exchange an encrypted message
//! under the established group key.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use secure_spread_repro::core::member::SecureMember;
use secure_spread_repro::core::session::SecureSession;
use secure_spread_repro::core::suite::CryptoSuite;
use secure_spread_repro::gcs::{testbed, SimWorld};
use secure_spread_repro::ProtocolKind;

fn main() {
    // A simulated 13-machine LAN running one Spread-like daemon per
    // machine, exactly as in §6.1.1 of the paper.
    let mut world = SimWorld::new(testbed::lan());

    // Five founding members plus one late joiner, all running TGDH
    // with 512-bit cost accounting.
    let suite = Rc::new(CryptoSuite::sim_512());
    for i in 0..6u64 {
        let member = SecureMember::new(ProtocolKind::Tgdh, Rc::clone(&suite), 100 + i, Some(42));
        world.add_client(Box::new(member));
    }

    // The group forms with members 0..5.
    world.install_initial_view_of((0..5).collect());
    world.run_until_quiescent();
    println!("group formed: view {:?}", world.view().unwrap().members);

    // Member 5 joins; the view change triggers TGDH re-keying.
    let t0 = world.now();
    world.inject_join(5);
    world.run_until_quiescent();
    let elapsed = world.now().as_millis_f64() - t0.as_millis_f64();
    println!("join + re-key completed in {elapsed:.2} virtual ms");

    // All six members hold the same fresh group secret.
    let epoch = world.view().unwrap().id;
    let secret = world
        .client::<SecureMember>(0)
        .secret(epoch)
        .unwrap()
        .clone();
    for c in 1..6 {
        assert_eq!(world.client::<SecureMember>(c).secret(epoch), Some(&secret));
    }
    println!("all 6 members agree on the epoch-{epoch} group key");

    // Application data flows under the group key (the Secure Spread
    // data-confidentiality service).
    let mut tx = SecureSession::new(&secret, epoch);
    let rx = SecureSession::new(&secret, epoch);
    let wire = tx.seal(0, b"welcome, member five!");
    let plain = rx.open(0, &wire).expect("authentic");
    println!("member 5 decrypted: {:?}", String::from_utf8_lossy(&plain));

    // An outsider with a different key cannot read or forge.
    use secure_spread_repro::bignum::Ubig;
    let outsider = SecureSession::new(&Ubig::from(1234u64), epoch);
    assert!(outsider.open(0, &wire).is_err());
    println!("outsider rejected (bad MAC) — confidentiality holds");
}

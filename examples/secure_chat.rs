//! A secure group chat over the full stack: TGDH establishes the group
//! key, application messages travel as causally-ordered multicasts
//! encrypted by the per-epoch [`SecureSession`], and a [`ReplayGuard`]
//! rejects duplicated ciphertexts — the complete Secure Spread
//! experience, including a mid-conversation re-key when a member
//! leaves.
//!
//! Run with: `cargo run --release --example secure_chat`

use std::rc::Rc;

use secure_spread_repro::core::member::SecureMember;
use secure_spread_repro::core::session::{ReplayGuard, SecureSession, SessionError};
use secure_spread_repro::core::suite::CryptoSuite;
use secure_spread_repro::gcs::{testbed, SimWorld};
use secure_spread_repro::ProtocolKind;

fn main() {
    let suite = Rc::new(CryptoSuite::sim_512());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..4u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Tgdh,
            Rc::clone(&suite),
            i,
            Some(0xc4a7),
        )));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let epoch1 = world.view().unwrap().id;
    let key1 = world
        .client::<SecureMember>(0)
        .secret(epoch1)
        .unwrap()
        .clone();
    println!("group of 4 keyed (epoch {epoch1})");

    // Chat under the epoch-1 key.
    let mut alice = SecureSession::new(&key1, epoch1);
    let bob = SecureSession::new(&key1, epoch1);
    let mut bob_guard = ReplayGuard::new();
    let lines = [
        "did everyone get the new key?",
        "yes — say something secret",
        "rendezvous at dawn",
    ];
    let mut last_wire = Vec::new();
    for line in lines {
        let wire = alice.seal(0, line.as_bytes());
        let plain = bob
            .open_checked(&mut bob_guard, 0, &wire)
            .expect("authentic");
        println!("alice -> group: {:?}", String::from_utf8_lossy(&plain));
        last_wire = wire;
    }

    // An attacker replays the last ciphertext: rejected.
    match bob.open_checked(&mut bob_guard, 0, &last_wire) {
        Err(SessionError::Replayed { seq, .. }) => {
            println!("replayed ciphertext (seq {seq}) rejected ✓")
        }
        other => panic!("replay slipped through: {other:?}"),
    }

    // Member 3 leaves; the group re-keys.
    world.inject_leave(3);
    world.run_until_quiescent();
    let epoch2 = world.view().unwrap().id;
    let key2 = world
        .client::<SecureMember>(0)
        .secret(epoch2)
        .unwrap()
        .clone();
    assert_ne!(key1, key2);
    println!("member 3 left; group re-keyed (epoch {epoch2})");

    // The departed member's old key no longer opens new traffic…
    let mut carol = SecureSession::new(&key2, epoch2);
    let wire = carol.seal(1, b"post-leave plans");
    let eve = SecureSession::new(&key1, epoch1); // what member 3 still holds
    assert!(eve.open(1, &wire).is_err());
    println!("departed member cannot read epoch-{epoch2} traffic ✓");

    // …while remaining members chat on.
    let dave = SecureSession::new(&key2, epoch2);
    let plain = dave.open(1, &wire).expect("current members decrypt");
    println!("bob -> group: {:?}", String::from_utf8_lossy(&plain));
}

//! The three-continent experiment: runs a join and a leave for all
//! five protocols on the paper's JHU/UCI/ICU WAN testbed (Figure 13)
//! and prints a miniature of Figure 14.
//!
//! Run with: `cargo run --release --example wan_experiment`

use secure_spread_repro::core::experiment::{
    run_join, run_leave_weighted, ExperimentConfig, SuiteKind,
};
use secure_spread_repro::ProtocolKind;

fn main() {
    let n = 20;
    println!("WAN testbed (Figure 13): 11 machines at JHU, 1 at UCI, 1 at ICU");
    println!("RTTs: JHU-UCI 35 ms, UCI-ICU 150 ms, ICU-JHU 135 ms");
    println!();
    println!(
        "{:<8} {:>16} {:>16}   (n = {n}, DH 512 bits, total elapsed virtual ms)",
        "protocol", "join", "leave"
    );
    for kind in ProtocolKind::all() {
        let cfg = ExperimentConfig::wan(kind, SuiteKind::Sim512);
        let join = run_join(&cfg, n);
        let leave = run_leave_weighted(&cfg, n);
        assert!(join.ok && leave.ok, "{kind} failed");
        println!(
            "{:<8} {:>13.0} ms {:>13.0} ms",
            kind.name(),
            join.elapsed_ms,
            leave.elapsed_ms
        );
    }
    println!();
    println!("expected shape (paper §6.2): GDH join dwarfs the rest (round");
    println!("count + Agreed factor-out unicasts); BD is the worst leave;");
    println!("CKD stays competitive thanks to its cheap FIFO unicasts.");
}

//! # secure-spread-repro
//!
//! A from-scratch Rust reproduction of *"On the Performance of Group
//! Key Agreement Protocols"* (Amir, Kim, Nita-Rotaru, Tsudik —
//! ICDCS 2002): five group key agreement protocols for dynamic peer
//! groups — **GDH**, **CKD**, **TGDH**, **STR** and **BD** — integrated
//! with a simulated Spread-like view-synchronous group communication
//! system, together with the experiment harness that regenerates every
//! table and figure of the paper.
//!
//! This crate is a façade: it re-exports the workspace's layers so
//! applications can depend on a single crate.
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | [`bignum`] | `gkap-bignum` | arbitrary-precision modular arithmetic |
//! | [`crypto`] | `gkap-crypto` | DH groups, RSA, SHA-1/256, HMAC, AES-CTR |
//! | [`sim`] | `gkap-sim` | discrete-event core, CPU model, statistics |
//! | [`gcs`] | `gkap-gcs` | token-ring total order + membership |
//! | [`core`](mod@core) | `gkap-core` | the five protocols, secure sessions, experiments |
//!
//! # Quickstart
//!
//! ```
//! use secure_spread_repro::core::experiment::{run_join, ExperimentConfig};
//! use secure_spread_repro::core::protocols::ProtocolKind;
//!
//! // A member joins a 9-member TGDH group on the paper's LAN testbed.
//! let cfg = ExperimentConfig::lan_fast(ProtocolKind::Tgdh);
//! let outcome = run_join(&cfg, 10);
//! assert!(outcome.ok);
//! println!("join took {:.2} virtual ms", outcome.elapsed_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gkap_bignum as bignum;
pub use gkap_core as core;
pub use gkap_crypto as crypto;
pub use gkap_gcs as gcs;
pub use gkap_sim as sim;

/// The five protocols, re-exported for convenience.
pub use gkap_core::protocols::ProtocolKind;

/// The secure member (gcs client) type.
pub use gkap_core::member::SecureMember;

/// The per-epoch application-data channel.
pub use gkap_core::session::SecureSession;

/// Replayable workload scenarios.
pub use gkap_core::scenario::{run_scenario, Scenario};

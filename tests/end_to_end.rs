//! Workspace-level integration tests: the full stack — bignum →
//! crypto → simulated GCS → protocols → secure sessions — exercised
//! through the façade crate's public API.

use std::rc::Rc;

use secure_spread_repro::core::experiment::{run_formation, run_join, run_merge, ExperimentConfig};
use secure_spread_repro::core::member::SecureMember;
use secure_spread_repro::core::suite::CryptoSuite;
use secure_spread_repro::gcs::{testbed, SimWorld};
use secure_spread_repro::{ProtocolKind, SecureSession};

#[test]
fn facade_reexports_work_end_to_end() {
    let outcome = run_join(&ExperimentConfig::lan_fast(ProtocolKind::Str), 8);
    assert!(outcome.ok);
}

#[test]
fn full_stack_session_data_flow() {
    // Form a group, re-key it on a join, then push application data
    // through the per-epoch secure sessions of two members.
    let suite = Rc::new(CryptoSuite::sim_512());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..4u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Gdh,
            Rc::clone(&suite),
            i,
            Some(11),
        )));
    }
    world.install_initial_view_of(vec![0, 1, 2]);
    world.run_until_quiescent();
    world.inject_join(3);
    world.run_until_quiescent();

    let epoch = world.view().unwrap().id;
    let k0 = world
        .client::<SecureMember>(0)
        .secret(epoch)
        .unwrap()
        .clone();
    let k3 = world
        .client::<SecureMember>(3)
        .secret(epoch)
        .unwrap()
        .clone();
    assert_eq!(k0, k3);

    let mut tx = SecureSession::new(&k0, epoch);
    let rx = SecureSession::new(&k3, epoch);
    for i in 0..5u8 {
        let wire = tx.seal(0, &[i; 100]);
        assert_eq!(rx.open(0, &wire).unwrap(), vec![i; 100]);
    }

    // A member that never joined (fresh key) cannot read the traffic.
    let wire = tx.seal(0, b"secret agenda");
    let outsider = SecureSession::new(&secure_spread_repro::bignum::Ubig::from(99u64), epoch);
    assert!(outsider.open(0, &wire).is_err());
}

#[test]
fn old_epoch_traffic_rejected_after_rekey() {
    // Forward secrecy at the session layer: after a leave, traffic
    // sealed under the old epoch's key no longer opens.
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..3u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Tgdh,
            Rc::clone(&suite),
            i,
            Some(3),
        )));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let e1 = world.view().unwrap().id;
    let k1 = world.client::<SecureMember>(0).secret(e1).unwrap().clone();

    world.inject_leave(2);
    world.run_until_quiescent();
    let e2 = world.view().unwrap().id;
    let k2 = world.client::<SecureMember>(0).secret(e2).unwrap().clone();
    assert_ne!(k1, k2, "leave must refresh the key");

    let mut old_tx = SecureSession::new(&k1, e1);
    let new_rx = SecureSession::new(&k2, e2);
    let stale = old_tx.seal(0, b"old message");
    assert!(
        new_rx.open(0, &stale).is_err(),
        "stale traffic must not open"
    );
}

#[test]
fn all_protocols_formation_via_facade() {
    for kind in ProtocolKind::all() {
        let outcome = run_formation(&ExperimentConfig::lan_fast(kind), 7);
        assert!(outcome.all_agreed, "{kind}");
    }
}

#[test]
fn two_groups_heal_after_partition() {
    // Partition + merge round trip through the experiment drivers.
    for kind in [ProtocolKind::Tgdh, ProtocolKind::Gdh, ProtocolKind::Str] {
        let outcome = run_merge(&ExperimentConfig::lan_fast(kind), 6, 6);
        assert!(outcome.ok, "{kind} merge of equals");
        assert_eq!(outcome.size_after, 12);
    }
}

#[test]
fn per_group_protocol_choice() {
    // The framework contribution: different groups in one system can
    // run different protocols (here sequentially; each world hosts one
    // group).
    for (kind, n) in [(ProtocolKind::Bd, 5), (ProtocolKind::Ckd, 9)] {
        let outcome = run_join(&ExperimentConfig::lan_fast(kind), n);
        assert!(outcome.ok, "{kind}");
        assert_eq!(outcome.size_after, n);
    }
}

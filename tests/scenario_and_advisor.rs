//! Facade-level tests of the workload-scenario driver and the
//! protocol advisor.

use secure_spread_repro::core::advisor::{advise, EventMix, NetworkKind, Workload};
use secure_spread_repro::core::experiment::ExperimentConfig;
use secure_spread_repro::core::scenario::{LeavePick, Scenario, Step};
use secure_spread_repro::{run_scenario, ProtocolKind};

#[test]
fn scenario_through_facade() {
    let cfg = ExperimentConfig::lan_fast(ProtocolKind::Tgdh);
    let scenario = Scenario {
        initial: 5,
        steps: vec![
            Step::Join,
            Step::Join,
            Step::Leave(LeavePick::Middle),
            Step::Merge(2),
            Step::Partition(3),
        ],
    };
    let report = run_scenario(&cfg, &scenario);
    assert!(report.ok);
    assert_eq!(report.events.len(), 5);
    assert_eq!(report.events.last().unwrap().size_after, 5);
    assert!(report.histogram.quantile(1.0) >= report.summary.max() / 2.0);
}

#[test]
fn scenario_distribution_reflects_event_mix() {
    // In TGDH, leaves are cheaper than joins (no round-1 component
    // broadcasts): a leave-only script's mean must be below a
    // join-only script's mean at the same sizes.
    use secure_spread_repro::core::experiment::SuiteKind;
    let cfg = ExperimentConfig::lan(ProtocolKind::Tgdh, SuiteKind::Sim512);
    let joins = Scenario {
        initial: 10,
        steps: vec![Step::Join; 5],
    };
    let leaves = Scenario {
        initial: 15,
        steps: vec![Step::Leave(LeavePick::Middle); 5],
    };
    let join_report = run_scenario(&cfg, &joins);
    let leave_report = run_scenario(&cfg, &leaves);
    assert!(join_report.ok && leave_report.ok);
    assert!(
        leave_report.summary.mean() < join_report.summary.mean(),
        "TGDH leaves ({:.1} ms) should be cheaper than joins ({:.1} ms)",
        leave_report.summary.mean(),
        join_report.summary.mean()
    );
}

#[test]
fn advisor_consistent_with_scenarios() {
    // The advisor's LAN pick must actually win a head-to-head scenario
    // against the worst LAN protocol at the same size.
    let pick = advise(&Workload {
        network: NetworkKind::Lan,
        events: EventMix::JoinLeave,
        group_size: 24,
    });
    use secure_spread_repro::core::experiment::SuiteKind;
    let scenario = Scenario::conference(24, 8);
    let t_pick = {
        let cfg = ExperimentConfig::lan(pick, SuiteKind::Sim512);
        run_scenario(&cfg, &scenario)
    };
    let t_gdh = {
        let cfg = ExperimentConfig::lan(ProtocolKind::Gdh, SuiteKind::Sim512);
        run_scenario(&cfg, &scenario)
    };
    assert!(t_pick.ok && t_gdh.ok);
    assert!(
        t_pick.summary.mean() < t_gdh.summary.mean(),
        "advised {pick} ({:.1} ms) must beat GDH ({:.1} ms)",
        t_pick.summary.mean(),
        t_gdh.summary.mean()
    );
}

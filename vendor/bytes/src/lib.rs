//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply-cloneable, immutable, reference-counted
//! byte buffer covering exactly the API surface this workspace uses
//! (`from`, `from_static`, `copy_from_slice`, `new`, `Deref` to `[u8]`).
//! Unlike the real crate there is no zero-copy slicing or `BytesMut`;
//! the simulation only ever builds a payload once and fans it out, so
//! `Arc<[u8]>` sharing is the whole story.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer (see module docs).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice (copied here; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Copies the given slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a copy of the bytes as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Returns a new `Bytes` covering the given subrange (copying).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes(Arc::from(&self.0[range]))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::from_static(b"hi"), Bytes::copy_from_slice(b"hi"));
        assert!(Bytes::new().is_empty());
    }
}

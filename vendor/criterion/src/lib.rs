//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use
//! (`criterion_group!` with `name`/`config`/`targets`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `sample_size`, `BenchmarkId`,
//! `Bencher::iter`/`iter_with_setup`, `black_box`) with a simple
//! wall-clock measurement loop: each benchmark runs a warmup iteration
//! followed by `sample_size` timed iterations and prints min/mean.
//! There is no statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fn", param)` displays as `fn/param`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; measures the timed routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup, then timed samples.
        black_box(routine());
        let n = self.samples.capacity();
        for _ in 0..n {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` once per sample, re-running `setup` (untimed)
    /// before each sample.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        black_box(routine(setup()));
        let n = self.samples.capacity();
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Declares a benchmark group; supports both the positional and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

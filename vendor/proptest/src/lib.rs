//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! reimplements exactly the proptest surface the workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_filter`, `prop_oneof!` (weighted and unweighted), `Just`,
//! `collection::vec`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic.** Each test function derives its RNG seed from
//!   its module path and the case index, so runs are reproducible and
//!   CI-stable.
//! * Default case count is 64 (real proptest: 256) to keep the suite
//!   fast; tests that set `ProptestConfig::with_cases(n)` are honored.

#![forbid(unsafe_code)]

use std::fmt;

pub mod test_runner {
    //! Deterministic RNG used to drive generation.

    /// SplitMix64-based RNG. Seeded from (test name, case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG deterministically derived from a test
        /// identifier and a case index.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the name, then mix in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            // Warm up so nearby seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// Next uniformly-distributed 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Failure raised by `prop_assert!` family; carried through the case
/// closure as an `Err` so the harness can label it with the case index.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only `cases` is meaningful in this stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: gave up satisfying `{}`", self.reason);
    }
}

/// Weighted union of strategies with a common value type; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, generator)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, f) in &self.arms {
            if pick < *w as u64 {
                return f(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("prop_oneof: weight bookkeeping")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + (rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {
        $(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "arbitrary value" generator, used by
/// [`any`].
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy producing arbitrary values of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: strategy for an arbitrary `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. See crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __result {
                        panic!(
                            "proptest {} failed at case #{}: {}",
                            stringify!($name),
                            case,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted/unweighted union of strategies: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(
                ($weight as u32, {
                    let __s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::Strategy::generate(&__s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }),
            )+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(
                (1u32, {
                    let __s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::Strategy::generate(&__s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }),
            )+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::deterministic("x", 0);
        let mut b = crate::test_runner::TestRng::deterministic("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_oneof_work(
            v in crate::collection::vec(any::<u8>(), 0..5),
            k in prop_oneof![2 => Just(1usize), 1 => (5usize..7)],
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(k == 1 || (5..7).contains(&k));
        }
    }
}

//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, and nothing in this
//! workspace actually serializes through serde — the wire format is the
//! hand-rolled codec in `gkap-core` and all file output is hand-written
//! CSV/JSONL. The `Serialize`/`Deserialize` derives on value types exist
//! so downstream users *could* plug in real serde; until then these
//! marker traits keep the annotations compiling without pulling in the
//! real dependency graph.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize` (no methods; the real
/// trait's machinery is unused in this workspace).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_marker {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_marker!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

//! Minimal offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stub defines `Serialize`/`Deserialize` as marker
//! traits, so the derives only need to emit empty impls. The parser
//! below extracts the type name (non-generic types only, which is all
//! this workspace derives on) without depending on `syn`/`quote`.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
